//! The lexical lint rules (R1–R6). Each rule is a pure function over a
//! [`FileCtx`] appending [`Diagnostic`]s; scoping (which crates a rule
//! watches) lives here next to the rule it configures. Cross-file rules
//! (R7–R9) live in [`crate::semantic`] and run over the symbol graph.
//!
//! Rule doc comments double as the `explain` subcommand's output (extracted
//! from the embedded source), so each carries its rationale, a minimal
//! bad/good example and the bug class it descends from.

use crate::lexer::{Tok, TokKind};
use crate::parse::{arms, fn_sites, match_body};
use crate::{matching_close, Diagnostic, FileCtx, Severity};

/// Crates whose runtime behaviour feeds the deterministic simulation: any
/// iteration-order or wall-clock dependence here breaks byte-identical
/// figure outputs.
const R1_SCOPE: &[&str] = &[
    "crates/sim/",
    "crates/core/",
    "crates/stack/",
    "crates/cluster/",
    "crates/lb/",
];

/// Crates holding the migration hot paths where a panic would tear down the
/// whole simulated cluster instead of surfacing a typed abort.
const R4_SCOPE: &[&str] = &["crates/core/", "crates/stack/"];

/// Crates whose public API must be documented (same set as R4 — the
/// contribution layer).
const R5_SCOPE: &[&str] = &["crates/core/", "crates/stack/"];

/// The cross-layer enums every dispatcher must match exhaustively: adding a
/// variant has to force each layer to decide, not fall into a `_` arm
/// (PR 3's capture-pressure misattribution hid behind exactly such an arm).
const R3_ENUMS: &[&str] = &[
    "Effect",
    "AbortReason",
    "Fault",
    "Event",
    "LbMsg",
    "Strategy",
];

/// R1 `determinism`: no `HashMap`/`HashSet` (RandomState iteration order),
/// no `Instant::now`/`SystemTime::now` (wall clock), no `thread_rng`
/// (unseeded randomness) in simulation-facing crates.
///
/// Lineage: the repo's acceptance bar is byte-identical fig5b/5c/timeline
/// output across PRs and shard counts; one RandomState iteration in a hot
/// loop silently reorders events and breaks that forever.
///
/// Bad:  `let mut queues: HashMap<NodeId, Vec<Msg>> = HashMap::new();`
/// Good: `let mut queues: BTreeMap<NodeId, Vec<Msg>> = BTreeMap::new();`
pub fn r1_determinism(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.in_scope(R1_SCOPE) {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if ctx.in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        let msg = match t.text.as_str() {
            "HashMap" | "HashSet" => Some(format!(
                "`{}` iterates in RandomState order; use BTreeMap/BTreeSet (or allowlist with a proof of order-independence)",
                t.text
            )),
            "thread_rng" => {
                Some("`thread_rng` is unseeded; use the sim's DetRng".to_string())
            }
            "Instant" | "SystemTime" if path_call(&ctx.toks, i, "now") => Some(format!(
                "`{}::now` reads the wall clock; thread the sim clock instead",
                t.text
            )),
            _ => None,
        };
        if let Some(msg) = msg {
            out.push(diag(ctx, i, "R1", "determinism", Severity::Error, msg));
        }
    }
}

/// Whether token `i` starts the path call `<ident>::<method>`.
fn path_call(toks: &[Tok], i: usize, method: &str) -> bool {
    toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.is_ident(method))
}

/// R2 `clock-threading`: the PR-3 stale-clock bug class. In `crates/stack`:
///
/// * **R2a** — a function whose body reads or writes `last_hit` (the TTL
///   liveness timestamp) must take a `now` parameter; otherwise it can only
///   invent a clock, and an invented clock is what let TTL GC evict live
///   xlate rules.
/// * **R2b** — passing `SimTime::ZERO` as an argument to a `*_at(…)` call is
///   that invention at the call site: a clock-threaded API fed a constant.
///
/// Lineage: PR 3 shipped an xlate-table wrapper that installed TTL rules at
/// `SimTime::ZERO`, so the GC sweep saw every rule as idle-expired and
/// evicted live translations mid-migration. R9 (`clock-dataflow`)
/// generalizes this rule across call hops and crates.
///
/// Bad:  `fn install(&mut self, r: Rule) { self.install_at(r, SimTime::ZERO) }`
/// Good: `fn install(&mut self, r: Rule, now: SimTime) { self.install_at(r, now) }`
pub fn r2_clock_threading(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.in_scope(&["crates/stack/"]) {
        return;
    }
    for f in fn_sites(&ctx.toks) {
        if ctx.in_test[f.fn_kw] {
            continue;
        }
        let (body_open, body_close) = match f.body {
            Some(b) => b,
            None => continue,
        };
        let touches_ttl = ctx.toks[body_open..=body_close]
            .iter()
            .any(|t| t.is_ident("last_hit"));
        let has_now = ctx.toks[f.params.0..=f.params.1]
            .iter()
            .any(|t| t.is_ident("now"));
        if touches_ttl && !has_now {
            // Keyed by the offending fn itself (at the `fn` keyword the
            // enclosing-fn map would say `top`), impl-qualified so two
            // same-named methods never share a suppression.
            out.push(Diagnostic {
                rule: "R2",
                name: "clock-threading",
                severity: Severity::Error,
                path: ctx.path.to_string(),
                line: ctx.toks[f.fn_kw].line,
                key: format!("fn:{}", ctx.qualified_fn(f.fn_kw, &f.name)),
                msg: format!(
                    "fn `{}` touches `last_hit` (TTL state) but takes no `now` parameter; thread the sim clock through",
                    f.name
                ),
            });
        }
    }
    // R2b: SimTime::ZERO fed to a clock-threaded `*_at(…)` call.
    for (i, t) in ctx.toks.iter().enumerate() {
        if ctx.in_test[i]
            || t.kind != TokKind::Ident
            || !t.text.ends_with("_at")
            || !matches!(
                ctx.toks.get(i + 1).map(|n| &n.kind),
                Some(TokKind::Open('('))
            )
        {
            continue;
        }
        // Skip definitions (`fn install_at(…)`) — only call sites matter.
        if i > 0 && ctx.toks[i - 1].is_ident("fn") {
            continue;
        }
        let close = match matching_close(&ctx.toks, i + 1) {
            Some(c) => c,
            None => continue,
        };
        for j in i + 2..close {
            if ctx.toks[j].is_ident("SimTime") && path_call(&ctx.toks, j, "ZERO") {
                out.push(diag(
                    ctx,
                    j,
                    "R2",
                    "clock-threading",
                    Severity::Error,
                    format!(
                        "`SimTime::ZERO` passed to clock-threaded `{}`; pass the real sim clock (stale-clock bug class from PR 3)",
                        t.text
                    ),
                ));
            }
        }
    }
}

/// R3 `no-wildcard-arm`: a `match` whose arm patterns name one of the
/// cross-layer enums must not contain a bare `_` arm.
///
/// Lineage: PR 3's capture-pressure misattribution — a `_` fallback in the
/// effect dispatcher silently swallowed a new variant, charging its cost to
/// the wrong phase. Adding a variant has to force every layer to decide.
/// R7 (`effect-coverage`) proves the complementary cross-file half: the arm
/// actually exists in every dispatcher.
///
/// Bad:  `match e { Effect::Complete => done(), _ => {} }`
/// Good: `match e { Effect::Complete => done(), Effect::Aborted => undo() }`
pub fn r3_no_wildcard_arm(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.in_scope(&["crates/"]) {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if ctx.in_test[i] || !t.is_ident("match") {
            continue;
        }
        let Some(body_open) = match_body(&ctx.toks, i) else {
            continue;
        };
        let Some(body_close) = matching_close(&ctx.toks, body_open) else {
            continue;
        };
        let arms = arms(&ctx.toks, body_open, body_close);
        let mut enum_named: Option<&str> = None;
        let mut wildcard_at: Vec<usize> = Vec::new();
        for (pat_start, arrow) in &arms {
            let pat = &ctx.toks[*pat_start..*arrow];
            if let Some(name) = pat.iter().enumerate().find_map(|(k, p)| {
                R3_ENUMS
                    .iter()
                    .find(|e| p.is_ident(e) && path_sep(pat, k))
                    .copied()
            }) {
                enum_named = Some(name);
            }
            // Bare `_` (optionally guarded: `_ if …`).
            if pat.first().is_some_and(|p| p.is_ident("_"))
                && (pat.len() == 1 || pat[1].is_ident("if"))
            {
                wildcard_at.push(*pat_start);
            }
        }
        if let Some(name) = enum_named {
            for w in wildcard_at {
                out.push(diag(
                    ctx,
                    w,
                    "R3",
                    "no-wildcard-arm",
                    Severity::Error,
                    format!(
                        "wildcard `_` arm in a match over `{name}`; enumerate the variants so new ones force a decision"
                    ),
                ));
            }
        }
    }
}

/// Whether `pat[k]` is followed by `::` (i.e. is a path segment, not a
/// binding that happens to shadow an enum name).
fn path_sep(pat: &[Tok], k: usize) -> bool {
    pat.get(k + 1).is_some_and(|t| t.is_punct(':'))
        && pat.get(k + 2).is_some_and(|t| t.is_punct(':'))
}

/// R4 `panic-hygiene`: no `unwrap`/`expect` method calls and no
/// `panic!`/`unreachable!`/`todo!`/`unimplemented!` in non-test core/stack
/// code — hot paths must surface typed errors or documented allowlisted
/// invariants, not process aborts.
///
/// Lineage: a panic mid-migration tears down the whole simulated cluster
/// instead of surfacing a typed `AbortReason`, so one bad unwrap turns a
/// recoverable fault into a vanished experiment. Grandfathered sites live
/// in `lint.allow`, each keyed `fn:<Impl::name>` with a written invariant.
///
/// Bad:  `let p = self.staged.take().unwrap();`
/// Good: `let Some(p) = self.staged.take() else { return self.abort(reason) };`
pub fn r4_panic_hygiene(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.in_scope(R4_SCOPE) {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if ctx.in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        let method_call = i > 0
            && ctx.toks[i - 1].is_punct('.')
            && matches!(
                ctx.toks.get(i + 1).map(|n| &n.kind),
                Some(TokKind::Open('('))
            );
        let macro_bang = ctx.toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
        let hit = match t.text.as_str() {
            "unwrap" | "expect" if method_call => true,
            "panic" | "unreachable" | "todo" | "unimplemented" if macro_bang => true,
            _ => false,
        };
        if hit {
            out.push(diag(
                ctx,
                i,
                "R4",
                "panic-hygiene",
                Severity::Error,
                format!(
                    "`{}` can abort the process on a hot path; return a typed error, restructure, or allowlist with the invariant that makes it unreachable",
                    t.text
                ),
            ));
        }
    }
}

/// R5 `doc-hygiene`: every `pub` item (including `pub` struct fields) in
/// core/stack carries an outer doc comment. `pub(crate)`/`pub(super)`
/// restricted items and `pub use` re-exports (documented at the definition)
/// are exempt.
///
/// Lineage: the contribution layer (core/stack) is the paper-facing API;
/// undocumented knobs are how configuration drift between experiments went
/// unnoticed pre-PR 2. Warning severity, but `check` is strict, so the tree
/// stays at zero either way.
///
/// Bad:  `pub fn detach_budget(&self) -> u32 { … }`
/// Good: `/// Bytes the freeze window may still ship.` above it.
pub fn r5_doc_hygiene(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.in_scope(R5_SCOPE) {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if ctx.in_test[i] || !t.is_ident("pub") {
            continue;
        }
        // Restricted visibility: `pub(crate)` etc.
        if matches!(
            ctx.toks.get(i + 1).map(|n| &n.kind),
            Some(TokKind::Open('('))
        ) {
            continue;
        }
        let Some((kind, name)) = item_after_pub(&ctx.toks, i) else {
            continue;
        };
        if kind == "use" {
            continue;
        }
        if !documented(&ctx.toks, i) {
            out.push(diag(
                ctx,
                i,
                "R5",
                "doc-hygiene",
                Severity::Warning,
                format!("public {kind} `{name}` has no doc comment"),
            ));
        }
    }
}

/// The one sanctioned home for shared-state concurrency primitives: the
/// worker pool implementing the parallel core's barrier protocol. Everything
/// else in the simulation family must cross shard boundaries through the
/// `dvelm_sim` mailbox/round API, never through ad-hoc shared state.
const R6_EXEMPT: &[&str] = &["crates/sim/src/par.rs"];

/// R6 `shard-isolation`: no `Mutex`/`RwLock`/`Condvar`/`Atomic*`/`mpsc`/
/// `thread::spawn`/`thread::scope` in simulation-facing crates outside the
/// sanctioned pool module. The parallel core's determinism contract is that
/// workers communicate only through per-task mailboxes drained at the
/// barrier in dispatch order; a stray primitive is a channel for
/// scheduling-dependent (thread-count-dependent) behaviour to leak into
/// simulation state.
///
/// Lineage: PR 6 sharded the event loop with a byte-identical-at-any-
/// thread-count guarantee; that guarantee survives only while `sim/par.rs`
/// is the single home of shared-state primitives.
///
/// Bad:  `static HITS: AtomicU64 = AtomicU64::new(0);` in a shard hot path.
/// Good: count in the task's mailbox and merge at the barrier in dispatch
/// order.
pub fn r6_shard_isolation(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !ctx.in_scope(R1_SCOPE) || R6_EXEMPT.contains(&ctx.path) {
        return;
    }
    for (i, t) in ctx.toks.iter().enumerate() {
        if ctx.in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        let msg = match t.text.as_str() {
            "Mutex" | "RwLock" | "Condvar" => Some(format!(
                "`{}` shares state across threads outside the barrier protocol; cross-shard values must travel through dvelm_sim mailboxes (WorkerPool rounds)",
                t.text
            )),
            "mpsc" => Some(
                "`mpsc` channels order messages by scheduling, not by dispatch key; use dvelm_sim mailboxes drained at the barrier".to_string(),
            ),
            "thread" if path_call(&ctx.toks, i, "spawn") || path_call(&ctx.toks, i, "scope") => {
                Some(
                    "ad-hoc threads bypass the worker pool's barrier; run parallel work through dvelm_sim::par::WorkerPool".to_string(),
                )
            }
            s if s.starts_with("Atomic") && s.len() > "Atomic".len() => Some(format!(
                "`{}` is scheduling-ordered shared state; shard results belong in per-task mailboxes merged in dispatch order",
                t.text
            )),
            _ => None,
        };
        if let Some(msg) = msg {
            out.push(diag(ctx, i, "R6", "shard-isolation", Severity::Error, msg));
        }
    }
}

/// Classify the item following a `pub` at index `i`: returns
/// `(kind, name)` — e.g. `("fn", "route_out")` or `("field", "local_port")`.
fn item_after_pub(toks: &[Tok], i: usize) -> Option<(&'static str, String)> {
    let mut j = i + 1;
    // Skip modifiers: const/unsafe/async/extern "C".
    loop {
        let t = toks.get(j)?;
        match t.text.as_str() {
            "unsafe" | "async" => j += 1,
            "extern" => {
                j += 1;
                if toks.get(j).is_some_and(|n| n.kind == TokKind::Lit) {
                    j += 1;
                }
            }
            "const" => {
                // `pub const fn` is a fn; `pub const NAME` is a const item.
                if toks.get(j + 1).is_some_and(|n| n.is_ident("fn")) {
                    j += 1;
                } else {
                    let name = toks.get(j + 1)?.text.clone();
                    return Some(("const", name));
                }
            }
            _ => break,
        }
    }
    let t = toks.get(j)?;
    let kind = match t.text.as_str() {
        "fn" => "fn",
        "struct" => "struct",
        "enum" => "enum",
        "trait" => "trait",
        "mod" => "mod",
        "static" => "static",
        "type" => "type",
        "union" => "union",
        "use" => return Some(("use", String::new())),
        _ if t.kind == TokKind::Ident => {
            // `pub name: Type` — a struct field.
            if toks.get(j + 1).is_some_and(|n| n.is_punct(':')) {
                return Some(("field", t.text.clone()));
            }
            return None;
        }
        _ => return None,
    };
    let name = toks.get(j + 1).map(|n| n.text.clone()).unwrap_or_default();
    Some((kind, name))
}

/// Whether the item introduced at token `i` (its `pub`) is preceded by an
/// outer doc comment, skipping attribute groups (`#[derive(…)]` may sit
/// between the doc and the item).
fn documented(toks: &[Tok], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        match toks[j].kind {
            TokKind::Close(']') => {
                // Walk back over the attribute to its `#`.
                let mut depth = 0i32;
                loop {
                    match toks[j].kind {
                        TokKind::Close(_) => depth += 1,
                        TokKind::Open(_) => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if j == 0 {
                        return false;
                    }
                    j -= 1;
                }
                if j == 0 || !toks[j - 1].is_punct('#') {
                    return false;
                }
                j -= 1; // land on `#`; loop steps before it
            }
            TokKind::DocOuter => return true,
            _ => return false,
        }
    }
    false
}

fn diag(
    ctx: &FileCtx<'_>,
    tok: usize,
    rule: &'static str,
    name: &'static str,
    severity: Severity,
    msg: String,
) -> Diagnostic {
    Diagnostic {
        rule,
        name,
        severity,
        path: ctx.path.to_string(),
        line: ctx.toks[tok].line,
        key: ctx.key_at(tok),
        msg,
    }
}

#[cfg(test)]
mod tests {
    use crate::lint_file;

    fn rules_hit(path: &str, src: &str) -> Vec<(&'static str, u32)> {
        lint_file(path, src)
            .into_iter()
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn r1_flags_hashmap_in_scope_only() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(rules_hit("crates/stack/src/x.rs", src), vec![("R1", 1)]);
        assert!(rules_hit("crates/metrics/src/x.rs", src).is_empty());
    }

    #[test]
    fn r1_ignores_tests_and_instant_without_now() {
        let src =
            "#[cfg(test)]\nmod tests { use std::collections::HashSet; }\nfn f(i: Instant) {}\n";
        assert!(rules_hit("crates/cluster/src/x.rs", src).is_empty());
    }

    #[test]
    fn r2a_requires_now_param() {
        let bad = "fn refresh(&mut self) { self.rules[0].last_hit = t; }";
        let good = "fn refresh(&mut self, now: SimTime) { self.rules[0].last_hit = now; }";
        assert_eq!(rules_hit("crates/stack/src/x.rs", bad), vec![("R2", 1)]);
        assert!(rules_hit("crates/stack/src/x.rs", good).is_empty());
    }

    #[test]
    fn r2b_flags_zero_fed_to_clocked_call() {
        let src = "fn f(&mut self) { self.install_at(rule, SimTime::ZERO); }";
        assert_eq!(rules_hit("crates/stack/src/x.rs", src), vec![("R2", 1)]);
        let def = "fn install_at(&mut self, now: SimTime) { let last_hit = now; }";
        assert!(rules_hit("crates/stack/src/x.rs", def).is_empty());
    }

    #[test]
    fn r3_flags_wildcard_over_target_enum_only() {
        let bad = "fn f(e: Effect) { match e { Effect::Complete => {}\n _ => {} } }";
        let ok = "fn f(n: u8) { match n { 1 => {}\n _ => {} } }";
        let full = "fn f(e: Effect) { match e { Effect::Complete => {}\n Effect::Aborted => {} } }";
        assert_eq!(rules_hit("crates/metrics/src/x.rs", bad), vec![("R3", 2)]);
        assert!(rules_hit("crates/metrics/src/x.rs", ok).is_empty());
        assert!(rules_hit("crates/metrics/src/x.rs", full).is_empty());
    }

    #[test]
    fn r3_ignores_nested_wildcards_in_arm_bodies() {
        let src = "fn f(e: Effect, n: u8) { match e { Effect::Complete => match n { 1 => {}\n _ => {} }, Effect::Aborted => {} } }";
        assert!(rules_hit("crates/metrics/src/x.rs", src).is_empty());
    }

    #[test]
    fn r4_flags_unwrap_but_not_unwrap_or() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0); x.unwrap() }";
        assert_eq!(rules_hit("crates/core/src/x.rs", src), vec![("R4", 1)]);
    }

    #[test]
    fn r6_flags_primitives_in_scope_only() {
        let src = "use std::sync::Mutex;\nstatic N: AtomicU64 = AtomicU64::new(0);\n";
        assert_eq!(
            rules_hit("crates/cluster/src/x.rs", src),
            vec![("R6", 1), ("R6", 2), ("R6", 2)]
        );
        // Out of the simulation family: free to use what it likes.
        assert!(rules_hit("crates/metrics/src/x.rs", src).is_empty());
        // The sanctioned pool module is exempt.
        assert!(rules_hit("crates/sim/src/par.rs", src).is_empty());
    }

    #[test]
    fn r6_flags_adhoc_threads_but_not_pool_use() {
        let bad = "fn f() { std::thread::spawn(|| {}); }";
        assert_eq!(rules_hit("crates/sim/src/x.rs", bad), vec![("R6", 1)]);
        let good = "fn f(pool: &WorkerPool, tasks: &mut [T]) { pool.run_tasks(tasks, run); }";
        assert!(rules_hit("crates/sim/src/x.rs", good).is_empty());
        // `thread` not followed by ::spawn/::scope (e.g. a field) is fine.
        let field = "struct S { thread: u8 }";
        assert!(rules_hit("crates/sim/src/x.rs", field).is_empty());
    }

    #[test]
    fn r6_ignores_test_code() {
        let src = "#[cfg(test)]\nmod tests { use std::sync::Mutex; }\n";
        assert!(rules_hit("crates/cluster/src/x.rs", src).is_empty());
    }

    #[test]
    fn r5_field_and_fn_docs() {
        let bad = "pub struct S { pub x: u8 }\n";
        let hits = rules_hit("crates/stack/src/x.rs", bad);
        assert_eq!(hits, vec![("R5", 1), ("R5", 1)]);
        let good = "/// S.\npub struct S {\n /// X.\n #[allow(dead_code)]\n pub x: u8 }\n";
        assert!(rules_hit("crates/stack/src/x.rs", good).is_empty());
    }
}
