//! A minimal, self-contained Rust lexer.
//!
//! The build environment has no crates.io access, so `syn` is not an option;
//! like the `compat/` stubs, the tokenizer is vendored in-crate. It produces
//! a flat token stream with line numbers — enough for the repo's rules, which
//! are all expressible over tokens plus delimiter-depth tracking (no type
//! information needed).
//!
//! Faithfully handled so rules never fire inside non-code text:
//!
//! * line comments (`//`), nested block comments (`/* /* */ */`)
//! * doc comments — kept as tokens ([`TokKind::DocOuter`] for `///` and
//!   `/** */`, [`TokKind::DocInner`] for `//!` and `/*! */`) because rule R5
//!   needs them
//! * string, raw-string (`r#"…"#`), byte-string and char literals
//! * lifetimes (`'a`) vs. char literals (`'a'`)
//! * raw identifiers (`r#type`)

/// What kind of token a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `_`, …).
    Ident,
    /// Single punctuation character (`:`, `=`, `>`, `.`, `!`, …).
    Punct(char),
    /// Opening delimiter: one of `(`, `[`, `{`.
    Open(char),
    /// Closing delimiter: one of `)`, `]`, `}`.
    Close(char),
    /// String / char / numeric literal (contents irrelevant to the rules).
    Lit,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// Outer doc comment (`///` or `/** */`) — documents the *next* item.
    DocOuter,
    /// Inner doc comment (`//!` or `/*! */`) — documents the enclosing item.
    DocInner,
}

/// One lexed token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    /// The token's kind.
    pub kind: TokKind,
    /// The token's text. Literals and doc comments keep only a marker text,
    /// not their contents; identifiers keep their exact spelling.
    pub text: String,
    /// 1-based line number where the token starts.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// Lex `src` into a flat token stream. Never fails: unterminated constructs
/// consume to end-of-file, which is the forgiving behaviour a linter wants
/// (the compiler proper reports the real error).
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn peek(&self, off: usize) -> Option<char> {
        self.chars.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push(&mut self, kind: TokKind, text: &str, line: u32) {
        self.out.push(Tok {
            kind,
            text: text.to_string(),
            line,
        });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string_lit(line),
                'r' | 'b' if self.raw_or_byte_prefix() => self.prefixed_lit(line),
                '\'' => self.quote(line),
                c if c.is_alphabetic() || c == '_' => self.ident(line),
                c if c.is_ascii_digit() => self.number(line),
                '(' | '[' | '{' => {
                    self.bump();
                    self.push(TokKind::Open(c), &c.to_string(), line);
                }
                ')' | ']' | '}' => {
                    self.bump();
                    self.push(TokKind::Close(c), &c.to_string(), line);
                }
                c => {
                    self.bump();
                    self.push(TokKind::Punct(c), &c.to_string(), line);
                }
            }
        }
        self.out
    }

    /// `//`-style comment. `///` (not `////`) is an outer doc comment,
    /// `//!` an inner one; both become tokens, anything else is skipped.
    fn line_comment(&mut self, line: u32) {
        let third = self.peek(2);
        let fourth = self.peek(3);
        let kind = match third {
            Some('/') if fourth != Some('/') => Some(TokKind::DocOuter),
            Some('!') => Some(TokKind::DocInner),
            _ => None,
        };
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        if let Some(kind) = kind {
            self.push(kind, "doc", line);
        }
    }

    /// `/* */` comment with nesting. `/**` (not `/***` or the empty `/**/`)
    /// is an outer doc comment, `/*!` an inner one.
    fn block_comment(&mut self, line: u32) {
        let kind = match (self.peek(2), self.peek(3)) {
            (Some('*'), Some(c)) if c != '*' && c != '/' => Some(TokKind::DocOuter),
            (Some('!'), _) => Some(TokKind::DocInner),
            _ => None,
        };
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        if let Some(kind) = kind {
            self.push(kind, "doc", line);
        }
    }

    /// Ordinary `"…"` string with escapes.
    fn string_lit(&mut self, line: u32) {
        self.bump();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push(TokKind::Lit, "\"str\"", line);
    }

    /// Whether the cursor sits on a raw/byte string or raw-ident prefix
    /// rather than a plain identifier starting with `r` or `b`.
    fn raw_or_byte_prefix(&self) -> bool {
        let c0 = self.peek(0);
        let c1 = self.peek(1);
        let c2 = self.peek(2);
        match (c0, c1) {
            // r"…", r#"…"# (raw string) and r#ident (raw identifier).
            (Some('r'), Some('"')) | (Some('r'), Some('#')) => true,
            // b"…", b'…', br"…", br#"…"#.
            (Some('b'), Some('"')) | (Some('b'), Some('\'')) => true,
            (Some('b'), Some('r')) => matches!(c2, Some('"') | Some('#')),
            _ => false,
        }
    }

    /// A literal (or raw identifier) starting with `r` / `b` prefixes.
    fn prefixed_lit(&mut self, line: u32) {
        // Raw identifier r#ident: lex as the identifier itself.
        if self.peek(0) == Some('r')
            && self.peek(1) == Some('#')
            && self.peek(2).is_some_and(|c| c.is_alphabetic() || c == '_')
        {
            self.bump();
            self.bump();
            self.ident(line);
            return;
        }
        // Consume prefix letters.
        while matches!(self.peek(0), Some('r') | Some('b')) {
            self.bump();
        }
        match self.peek(0) {
            Some('#') | Some('"') => {
                // Raw string: r<hashes>"…"<hashes>.
                let mut hashes = 0usize;
                while self.peek(0) == Some('#') {
                    hashes += 1;
                    self.bump();
                }
                self.bump(); // opening quote
                loop {
                    match self.bump() {
                        Some('"') => {
                            let mut seen = 0usize;
                            while seen < hashes && self.peek(0) == Some('#') {
                                seen += 1;
                                self.bump();
                            }
                            if seen == hashes {
                                break;
                            }
                        }
                        Some(_) => {}
                        None => break,
                    }
                }
                self.push(TokKind::Lit, "r\"str\"", line);
            }
            Some('\'') => {
                // Byte char b'…'.
                self.bump();
                while let Some(c) = self.bump() {
                    match c {
                        '\\' => {
                            self.bump();
                        }
                        '\'' => break,
                        _ => {}
                    }
                }
                self.push(TokKind::Lit, "b'c'", line);
            }
            _ => self.ident(line),
        }
    }

    /// A `'` is either a lifetime (`'a`, no closing quote) or a char literal
    /// (`'a'`, `'\n'`).
    fn quote(&mut self, line: u32) {
        let c1 = self.peek(1);
        let c2 = self.peek(2);
        let is_lifetime = c1.is_some_and(|c| c.is_alphabetic() || c == '_') && c2 != Some('\'');
        if is_lifetime {
            self.bump();
            let mut name = String::new();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    name.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push(TokKind::Lifetime, &name, line);
        } else {
            self.bump();
            while let Some(c) = self.bump() {
                match c {
                    '\\' => {
                        self.bump();
                    }
                    '\'' => break,
                    _ => {}
                }
            }
            self.push(TokKind::Lit, "'c'", line);
        }
    }

    fn ident(&mut self, line: u32) {
        let mut name = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                name.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, &name, line);
    }

    /// Numeric literal. Consumes alphanumerics and `_` only — `1.5` lexes as
    /// `1` `.` `5`, which is fine for the rules and keeps `0..n` ranges
    /// unambiguous.
    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Lit, &text, line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_are_not_code() {
        let src = "// HashMap\n/* HashSet /* nested */ */ fn x() {}";
        assert_eq!(idents(src), vec!["fn", "x"]);
    }

    #[test]
    fn strings_are_not_code() {
        let src = r###"let s = "HashMap"; let r = r#"HashSet"#; f(s);"###;
        assert_eq!(idents(src), vec!["let", "s", "let", "r", "f", "s"]);
    }

    #[test]
    fn doc_comments_become_tokens() {
        let toks = lex("/// outer\n//! inner\npub fn f() {}");
        assert_eq!(toks[0].kind, TokKind::DocOuter);
        assert_eq!(toks[1].kind, TokKind::DocInner);
        assert!(toks[2].is_ident("pub"));
    }

    #[test]
    fn quad_slash_is_plain_comment() {
        let toks = lex("//// not a doc\nfn f() {}");
        assert!(toks[0].is_ident("fn"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lit && t.text == "'c'"));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn raw_identifier_is_ident() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }
}
