//! `dvelm-lint` — repo-specific static analysis for the dvelm workspace.
//!
//! The reproduction rests on a deterministic simulation (fig5b/5c/timeline
//! outputs must stay byte-identical across PRs), and PR 3's review caught two
//! invariant violations a machine could have found: a stale sim clock
//! reaching the xlate TTL hot path, and a wildcard fallback misattributing
//! capture pressure. This crate encodes those incident classes — plus the
//! determinism and hygiene rules that prevent the next ones — in two layers:
//!
//! * **Lexical rules (R1–R6)**, in [`rules`]: pure functions over one file's
//!   token stream ([`FileCtx`]).
//! * **Semantic rules (R7–R9)**, in [`semantic`]: run over a workspace-wide
//!   symbol graph ([`graph::SymbolGraph`]) built by a lightweight parser
//!   pass ([`parse`]) on top of the same lexer — enum definitions with
//!   their variants, fn signatures with parameter names, call sites with
//!   argument shapes, and classified path uses. Cross-file invariants
//!   (effect dispatch coverage, abort-row coverage, interprocedural clock
//!   threading) live here.
//!
//! | rule | severity | scope | invariant |
//! |---|---|---|---|
//! | R1 `determinism` | error | sim, core, stack, cluster, lb | no `HashMap`/`HashSet`/`Instant::now`/`SystemTime::now`/`thread_rng` |
//! | R2 `clock-threading` | error | stack | `last_hit`/TTL state only behind a `now` parameter; no `SimTime::ZERO` fed to `*_at` calls |
//! | R3 `no-wildcard-arm` | error | all crates | no `_` arm in matches over `Effect`/`AbortReason`/`Fault`/`Event` |
//! | R4 `panic-hygiene` | error | core, stack | no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` |
//! | R5 `doc-hygiene` | warning | core, stack | every `pub` item documented |
//! | R6 `shard-isolation` | error | sim, core, stack, cluster, lb | no shared-state concurrency primitives outside `sim/par.rs` |
//! | R7 `effect-coverage` | error | workspace | every `Effect`/`LbEffect`/`Fault` variant dispatched and constructed |
//! | R8 `abort-row` | error | workspace | every entered `PhaseId` has an abort row; every emittable `AbortReason` is asserted in a matrix test |
//! | R9 `clock-dataflow` | error | sim family + dve | no `SimTime::ZERO`-derived constant into a clock parameter, transitively |
//!
//! Test code (`#[cfg(test)]` / `#[test]` items, `tests/`, `benches/`) is
//! exempt from every rule; strings and comments never trigger rules (the
//! vendored [`lexer`] strips them). Grandfathered sites live in the
//! repo-root `lint.allow` file, keyed by `(rule, path, enclosing item)` so
//! entries survive line drift — function keys are `impl`-qualified
//! (`fn:MigrationEngine::step_precopy`) so same-named methods in different
//! `impl` blocks of one file never share a suppression. CI fails if the file
//! grows. `check` treats warnings as errors (strict mode) so the tree stays
//! clean.

pub mod graph;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod semantic;

use lexer::{lex, Tok, TokKind};
use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;

/// How bad a finding is. `check` denies both — the distinction is for
/// readers triaging output, not for gating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Style/completeness finding (R5).
    Warning,
    /// Invariant violation (R1–R4).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One lint finding at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id, e.g. `"R1"`.
    pub rule: &'static str,
    /// Short rule name, e.g. `"determinism"`.
    pub name: &'static str,
    /// Finding severity.
    pub severity: Severity,
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Allowlist key: the enclosing item (`fn:name`, `item:name`) or `top`.
    /// Stable across line drift, unlike the line number.
    pub key: String,
    /// Human-readable explanation.
    pub msg: String,
}

impl Diagnostic {
    /// The `lint.allow` entry that would suppress this finding.
    pub fn allow_entry(&self) -> String {
        format!("{} {} {}", self.rule, self.path, self.key)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}[{}/{}] {} (allow key: {})",
            self.path, self.line, self.severity, self.rule, self.name, self.msg, self.key
        )
    }
}

/// A lexed file plus the derived per-token facts every rule needs.
pub struct FileCtx<'a> {
    /// Repo-relative path with `/` separators.
    pub path: &'a str,
    /// The token stream.
    pub toks: Vec<Tok>,
    /// For each token: inside a `#[cfg(test)]` / `#[test]` item?
    pub in_test: Vec<bool>,
    /// For each token: `impl`-qualified name (`Type::method`, or the bare
    /// name for free functions) of the innermost enclosing `fn`, if any.
    pub fn_of: Vec<Option<String>>,
    /// For each token: type name of the innermost enclosing `impl` block,
    /// if any.
    pub impl_of: Vec<Option<String>>,
}

impl<'a> FileCtx<'a> {
    /// Lex `src` and compute the test-region and enclosing-scope maps.
    pub fn new(path: &'a str, src: &str) -> FileCtx<'a> {
        let toks = lex(src);
        let in_test = test_regions(&toks);
        let (fn_of, impl_of) = scope_maps(&toks);
        FileCtx {
            path,
            toks,
            in_test,
            fn_of,
            impl_of,
        }
    }

    /// Allowlist key for a finding at token `i`: the innermost enclosing
    /// function (`impl`-qualified), or `top` for module-level code.
    pub fn key_at(&self, i: usize) -> String {
        match &self.fn_of[i] {
            Some(f) => format!("fn:{f}"),
            None => "top".to_string(),
        }
    }

    /// The `impl`-qualified name of the fn whose `fn` keyword sits at token
    /// `fn_kw`: `Type::bare` for methods, `bare` for free functions and for
    /// fns nested inside another fn body.
    pub fn qualified_fn(&self, fn_kw: usize, bare: &str) -> String {
        if self.fn_of[fn_kw].is_some() {
            // Nested inside another fn: not an impl method.
            return bare.to_string();
        }
        match &self.impl_of[fn_kw] {
            Some(ty) => format!("{ty}::{bare}"),
            None => bare.to_string(),
        }
    }

    /// Whether `path` lives under any of the given crate prefixes.
    pub fn in_scope(&self, prefixes: &[&str]) -> bool {
        prefixes.iter().any(|p| self.path.starts_with(p))
    }
}

/// Mark tokens covered by `#[cfg(test)]` / `#[test]`-attributed items.
///
/// An attribute whose tokens contain the identifier `test` but not `not`
/// (so `#[cfg(not(test))]` stays live code) marks the next item — through
/// its `{ … }` body, or up to the `;` for bodyless items — as test-only.
fn test_regions(toks: &[Tok]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#')
            && matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokKind::Open('[')))
        {
            let close = match matching_close(toks, i + 1) {
                Some(c) => c,
                None => break,
            };
            let attr = &toks[i + 2..close];
            let has_test = attr.iter().any(|t| t.is_ident("test"));
            let has_not = attr.iter().any(|t| t.is_ident("not"));
            if has_test && !has_not {
                let end = item_end(toks, close + 1);
                for flag in in_test.iter_mut().take(end + 1).skip(i) {
                    *flag = true;
                }
                i = end + 1;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    in_test
}

/// Index of the last token of the item starting at `start` (skipping further
/// attributes): the matching `}` of its first top-level brace group, or the
/// first top-level `;` for bodyless items.
fn item_end(toks: &[Tok], start: usize) -> usize {
    let mut i = start;
    // Skip stacked attributes.
    while i < toks.len()
        && toks[i].is_punct('#')
        && matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokKind::Open('[')))
    {
        match matching_close(toks, i + 1) {
            Some(c) => i = c + 1,
            None => return toks.len().saturating_sub(1),
        }
    }
    let mut depth = 0i32;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Open('{') => {
                return matching_close(toks, i).unwrap_or(toks.len() - 1);
            }
            TokKind::Open(_) => depth += 1,
            TokKind::Close(_) => depth -= 1,
            TokKind::Punct(';') if depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Index of the delimiter closing the one opened at `open`.
pub fn matching_close(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Open(_) => depth += 1,
            TokKind::Close(_) => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// For each token, the `impl`-qualified name of the innermost enclosing `fn`
/// body and the type name of the innermost enclosing `impl` block.
///
/// Methods are qualified by their `impl` type (`MigrationEngine::step`), so
/// allowlist keys distinguish same-named fns in different `impl` blocks of
/// one file. Fns nested inside another fn body keep their bare name.
fn scope_maps(toks: &[Tok]) -> (Vec<Option<String>>, Vec<Option<String>>) {
    let impl_opens = impl_body_opens(toks);
    let mut fn_of = vec![None; toks.len()];
    let mut impl_of = vec![None; toks.len()];
    // Stacks of (name, brace depth at which the body opened).
    let mut fn_stack: Vec<(String, u32)> = Vec::new();
    let mut impl_stack: Vec<(String, u32)> = Vec::new();
    let mut pending: Option<String> = None;
    // Delimiter depth inside the pending fn's signature (arrays in types,
    // parameter groups) so a `;` or `{` there is not mistaken for the
    // declaration end / body start.
    let mut sig_depth = 0i32;
    let mut depth = 0u32;
    for (i, t) in toks.iter().enumerate() {
        match &t.kind {
            TokKind::Ident if t.text == "fn" => {
                if let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                    pending = Some(name.text.clone());
                    sig_depth = 0;
                }
            }
            TokKind::Punct(';') if pending.is_some() && sig_depth == 0 => {
                // Bodyless declaration (trait method): discard.
                pending = None;
            }
            TokKind::Open('{') => {
                if let Some(ty) = impl_opens.get(&i) {
                    depth += 1;
                    impl_stack.push((ty.clone(), depth));
                    pending = None;
                } else if pending.is_some() && sig_depth == 0 {
                    depth += 1;
                    let bare = pending.take().unwrap_or_default();
                    // Qualify by the impl type unless nested in another fn.
                    let qual = match (impl_stack.last(), fn_stack.is_empty()) {
                        (Some((ty, _)), true) => format!("{ty}::{bare}"),
                        _ => bare,
                    };
                    fn_stack.push((qual, depth));
                } else if pending.is_some() {
                    sig_depth += 1;
                } else {
                    depth += 1;
                }
            }
            TokKind::Open(_) if pending.is_some() => sig_depth += 1,
            TokKind::Close('}') if pending.is_none() || sig_depth == 0 => {
                if fn_stack.last().is_some_and(|(_, d)| *d == depth) {
                    fn_stack.pop();
                }
                if impl_stack.last().is_some_and(|(_, d)| *d == depth) {
                    impl_stack.pop();
                }
                depth = depth.saturating_sub(1);
            }
            TokKind::Close(_) if pending.is_some() && sig_depth > 0 => sig_depth -= 1,
            _ => {}
        }
        fn_of[i] = fn_stack.last().map(|(n, _)| n.clone());
        impl_of[i] = impl_stack.last().map(|(n, _)| n.clone());
    }
    (fn_of, impl_of)
}

/// Map from the token index of each `impl` block's body `{` to the impl'd
/// type name: the last path segment after `for` for trait impls, else the
/// last top-level path segment of the self type.
///
/// Only item-position `impl` counts — `impl Trait` in type position (after
/// `:`, `(`, `=`, `->`, …) is ignored by checking the preceding token.
fn impl_body_opens(toks: &[Tok]) -> std::collections::BTreeMap<usize, String> {
    let mut out = std::collections::BTreeMap::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("impl") {
            continue;
        }
        let item_position = match toks.get(i.wrapping_sub(1)).filter(|_| i > 0) {
            None => true,
            Some(p) => {
                matches!(
                    p.kind,
                    TokKind::Close('}')
                        | TokKind::Close(']')
                        | TokKind::DocOuter
                        | TokKind::DocInner
                ) || p.is_punct(';')
                    || p.is_ident("unsafe")
            }
        };
        if !item_position {
            continue;
        }
        // Scan the header: track angle/delimiter depth, collect the last
        // top-level type name before and after `for`, stop at the body `{`.
        let mut angle = 0i32;
        let mut delim = 0i32;
        let mut for_seen = false;
        let mut where_seen = false;
        let mut pre: Option<String> = None;
        let mut post: Option<String> = None;
        let mut j = i + 1;
        while let Some(t) = toks.get(j) {
            match &t.kind {
                TokKind::Punct('<') => angle += 1,
                TokKind::Punct('>') => angle -= 1,
                TokKind::Open('{') if angle <= 0 && delim == 0 => {
                    if let Some(name) = post.or(pre) {
                        out.insert(j, name);
                    }
                    break;
                }
                TokKind::Open(_) => delim += 1,
                TokKind::Close(_) => delim -= 1,
                TokKind::Punct(';') if angle <= 0 && delim == 0 => break,
                TokKind::Ident if angle <= 0 && delim == 0 && !where_seen => {
                    match t.text.as_str() {
                        "for" => for_seen = true,
                        "where" => where_seen = true,
                        "const" | "unsafe" | "dyn" | "mut" => {}
                        _ if for_seen => post = Some(t.text.clone()),
                        _ => pre = Some(t.text.clone()),
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    out
}

/// One entry in the rule registry: identity, layer and the metadata the
/// CLI renders (`rules`, `explain`).
pub struct RuleInfo {
    /// Rule id, e.g. `"R7"`.
    pub id: &'static str,
    /// Short rule name, e.g. `"effect-coverage"`.
    pub name: &'static str,
    /// Severity of the rule's findings.
    pub severity: Severity,
    /// `"lexical"` (per-file token pass) or `"semantic"` (symbol graph).
    pub layer: &'static str,
    /// Human-readable scope.
    pub scope: &'static str,
    /// One-line summary for the rule table.
    pub summary: &'static str,
    /// Name of the implementing fn, for doc-comment extraction.
    fn_ident: &'static str,
    /// Source of the module holding the implementing fn.
    src: &'static str,
}

const RULES_SRC: &str = include_str!("rules.rs");
const SEMANTIC_SRC: &str = include_str!("semantic.rs");

/// Every rule, in id order. The CLI's `rules` table and `explain` output
/// are generated from this so they cannot drift from the implementations.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "R1",
        name: "determinism",
        severity: Severity::Error,
        layer: "lexical",
        scope: "sim,core,stack,cluster,lb",
        summary: "no HashMap/HashSet/Instant::now/SystemTime::now/thread_rng",
        fn_ident: "r1_determinism",
        src: RULES_SRC,
    },
    RuleInfo {
        id: "R2",
        name: "clock-threading",
        severity: Severity::Error,
        layer: "lexical",
        scope: "stack",
        summary: "last_hit/TTL state needs a `now` param; no SimTime::ZERO into *_at()",
        fn_ident: "r2_clock_threading",
        src: RULES_SRC,
    },
    RuleInfo {
        id: "R3",
        name: "no-wildcard-arm",
        severity: Severity::Error,
        layer: "lexical",
        scope: "all crates",
        summary: "no `_` arm in matches over Effect/AbortReason/Fault/Event/LbMsg/Strategy",
        fn_ident: "r3_no_wildcard_arm",
        src: RULES_SRC,
    },
    RuleInfo {
        id: "R4",
        name: "panic-hygiene",
        severity: Severity::Error,
        layer: "lexical",
        scope: "core,stack",
        summary: "no unwrap/expect/panic!/unreachable!/todo!/unimplemented!",
        fn_ident: "r4_panic_hygiene",
        src: RULES_SRC,
    },
    RuleInfo {
        id: "R5",
        name: "doc-hygiene",
        severity: Severity::Warning,
        layer: "lexical",
        scope: "core,stack",
        summary: "every pub item documented",
        fn_ident: "r5_doc_hygiene",
        src: RULES_SRC,
    },
    RuleInfo {
        id: "R6",
        name: "shard-isolation",
        severity: Severity::Error,
        layer: "lexical",
        scope: "sim,core,stack,cluster,lb",
        summary: "no Mutex/RwLock/Condvar/Atomic*/mpsc/thread::spawn outside sim/par.rs",
        fn_ident: "r6_shard_isolation",
        src: RULES_SRC,
    },
    RuleInfo {
        id: "R7",
        name: "effect-coverage",
        severity: Severity::Error,
        layer: "semantic",
        scope: "workspace",
        summary: "every Effect/LbEffect/Fault variant dispatched and constructed",
        fn_ident: "r7_effect_coverage",
        src: SEMANTIC_SRC,
    },
    RuleInfo {
        id: "R8",
        name: "abort-row",
        severity: Severity::Error,
        layer: "semantic",
        scope: "workspace",
        summary: "every entered PhaseId has an abort row; every emittable AbortReason asserted in a matrix test",
        fn_ident: "r8_abort_rows",
        src: SEMANTIC_SRC,
    },
    RuleInfo {
        id: "R9",
        name: "clock-dataflow",
        severity: Severity::Error,
        layer: "semantic",
        scope: "sim,core,stack,cluster,lb,dve",
        summary: "no literal/SimTime::ZERO-derived constant into a clock parameter, transitively",
        fn_ident: "r9_clock_dataflow",
        src: SEMANTIC_SRC,
    },
];

/// Look up a rule by id (`"R7"`) or name (`"effect-coverage"`).
pub fn rule_info(id_or_name: &str) -> Option<&'static RuleInfo> {
    RULES
        .iter()
        .find(|r| r.id.eq_ignore_ascii_case(id_or_name) || r.name == id_or_name)
}

/// The rule's full explanation: rationale, minimal bad/good example and bug
/// lineage, extracted from the doc comment of the implementing fn (embedded
/// via `include_str!` so the text cannot drift from the code).
pub fn explain(id_or_name: &str) -> Option<String> {
    let info = rule_info(id_or_name)?;
    let needle = format!("pub fn {}(", info.fn_ident);
    let lines: Vec<&str> = info.src.lines().collect();
    let def = lines.iter().position(|l| l.contains(&needle))?;
    let mut doc: Vec<String> = Vec::new();
    for l in lines[..def].iter().rev() {
        let t = l.trim_start();
        if let Some(rest) = t.strip_prefix("///") {
            doc.push(rest.strip_prefix(' ').unwrap_or(rest).to_string());
        } else {
            break;
        }
    }
    doc.reverse();
    let mut out = format!(
        "{} {} ({}, {} layer)\nscope: {}\n\n",
        info.id, info.name, info.severity, info.layer, info.scope
    );
    out.push_str(&doc.join("\n"));
    out.push('\n');
    Some(out)
}

/// Run every lexical rule over an already-built [`FileCtx`].
fn lexical_rules(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    rules::r1_determinism(ctx, out);
    rules::r2_clock_threading(ctx, out);
    rules::r3_no_wildcard_arm(ctx, out);
    rules::r4_panic_hygiene(ctx, out);
    rules::r5_doc_hygiene(ctx, out);
    rules::r6_shard_isolation(ctx, out);
}

/// Run every lexical rule over one file. `path` must be repo-relative with
/// `/` separators — rule scoping matches on its prefix. The semantic rules
/// need the whole workspace and run only through [`check_workspace`].
pub fn lint_file(path: &str, src: &str) -> Vec<Diagnostic> {
    let ctx = FileCtx::new(path, src);
    let mut out = Vec::new();
    lexical_rules(&ctx, &mut out);
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// The parsed `lint.allow` file: entries of the form `RULE path key`,
/// `#`-comments and blank lines ignored.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: BTreeSet<String>,
}

impl Allowlist {
    /// Parse allowlist text.
    pub fn parse(text: &str) -> Allowlist {
        let entries = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            // Normalize interior whitespace so "R4  a/b.rs  fn:x # why"
            // and "R4 a/b.rs fn:x" are the same entry.
            .map(|l| {
                l.split_whitespace()
                    .take_while(|w| !w.starts_with('#'))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .filter(|l| !l.is_empty())
            .collect();
        Allowlist { entries }
    }

    /// Whether `d` is suppressed by this allowlist.
    pub fn allows(&self, d: &Diagnostic) -> bool {
        self.entries.contains(&d.allow_entry())
    }

    /// Number of entries (the CI growth guard compares this).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the allowlist has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries that suppressed nothing in this run — stale grandfathering
    /// that should be deleted.
    pub fn unused<'a>(&'a self, used: &BTreeSet<String>) -> Vec<&'a str> {
        self.entries
            .iter()
            .filter(|e| !used.contains(*e))
            .map(String::as_str)
            .collect()
    }
}

/// Result of a whole-workspace check.
pub struct CheckReport {
    /// Findings not covered by the allowlist, sorted by (path, line).
    pub findings: Vec<Diagnostic>,
    /// Findings suppressed by the allowlist.
    pub allowed: usize,
    /// Allowlist entries that matched nothing.
    pub stale_allows: Vec<String>,
    /// Files scanned.
    pub files: usize,
}

/// Walk every workspace source directory under `root` (`crates/*/src` and
/// the umbrella crate's `src/`), lint each `.rs` file, run the semantic
/// rules over the workspace symbol graph, and apply `allow`.
///
/// Integration-test files (the umbrella `tests/` and each crate's `tests/`)
/// are never linted but *are* parsed into the symbol graph: the construction
/// census (R7) and the assertion census (R8) need to see them. `compat/`
/// stubs and this crate's own `tests/fixtures` are outside the walked set by
/// construction.
pub fn check_workspace(root: &Path, allow: &Allowlist) -> std::io::Result<CheckReport> {
    let mut files: Vec<std::path::PathBuf> = Vec::new();
    let mut aux_files: Vec<std::path::PathBuf> = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<_> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        members.sort();
        for member in members {
            collect_rs(&member.join("src"), &mut files)?;
            collect_rs(&member.join("tests"), &mut aux_files)?;
        }
    }
    collect_rs(&root.join("src"), &mut files)?;
    collect_rs(&root.join("tests"), &mut aux_files)?;
    files.sort();
    aux_files.sort();

    let mut findings = Vec::new();
    let mut allowed = 0usize;
    let mut used = BTreeSet::new();
    let mut syms: Vec<parse::FileSyms> = Vec::new();
    let scanned = files.len();
    for (file, lint_it) in files
        .iter()
        .map(|f| (f, true))
        .chain(aux_files.iter().map(|f| (f, false)))
    {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(file)?;
        let ctx = FileCtx::new(&rel, &src);
        if lint_it {
            let mut file_findings = Vec::new();
            lexical_rules(&ctx, &mut file_findings);
            findings.append(&mut file_findings);
        }
        syms.push(parse::FileSyms::from_ctx(&ctx));
    }
    let graph = graph::SymbolGraph::build(syms);
    semantic::run(&graph, &mut findings);

    findings.retain(|d| {
        if allow.allows(d) {
            allowed += 1;
            used.insert(d.allow_entry());
            false
        } else {
            true
        }
    });
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.rule, a.key.as_str()).cmp(&(
            b.path.as_str(),
            b.line,
            b.rule,
            b.key.as_str(),
        ))
    });
    let stale_allows = allow.unused(&used).into_iter().map(String::from).collect();
    Ok(CheckReport {
        findings,
        allowed,
        stale_allows,
        files: scanned,
    })
}

/// Recursively collect `.rs` files under `dir` (no-op if it doesn't exist).
fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_cover_cfg_test_mod() {
        let src = "fn live() {} #[cfg(test)] mod tests { fn hidden() {} }";
        let ctx = FileCtx::new("crates/stack/src/x.rs", src);
        let hidden = ctx.toks.iter().position(|t| t.is_ident("hidden")).unwrap();
        let live = ctx.toks.iter().position(|t| t.is_ident("live")).unwrap();
        assert!(ctx.in_test[hidden]);
        assert!(!ctx.in_test[live]);
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        let src = "#[cfg(not(test))] fn live() {}";
        let ctx = FileCtx::new("crates/stack/src/x.rs", src);
        let live = ctx.toks.iter().position(|t| t.is_ident("live")).unwrap();
        assert!(!ctx.in_test[live]);
    }

    #[test]
    fn enclosing_fn_names_nested() {
        let src = "fn outer() { fn inner() { mark(); } }";
        let ctx = FileCtx::new("crates/stack/src/x.rs", src);
        let mark = ctx.toks.iter().position(|t| t.is_ident("mark")).unwrap();
        assert_eq!(ctx.fn_of[mark].as_deref(), Some("inner"));
    }

    #[test]
    fn impl_qualified_fn_names() {
        let src = "impl Table { fn install(&mut self) { mark(); } }\n\
                   impl Other { fn install(&mut self) { mark2(); } }\n\
                   fn free() { mark3(); }\n\
                   impl fmt::Display for Wide { fn fmt(&self) { mark4(); } }";
        let ctx = FileCtx::new("crates/stack/src/x.rs", src);
        let at = |name: &str| {
            let i = ctx.toks.iter().position(|t| t.is_ident(name)).unwrap();
            ctx.fn_of[i].clone().unwrap()
        };
        assert_eq!(at("mark"), "Table::install");
        assert_eq!(at("mark2"), "Other::install");
        assert_eq!(at("mark3"), "free");
        assert_eq!(at("mark4"), "Wide::fmt");
    }

    #[test]
    fn impl_in_type_position_is_not_a_scope() {
        let src = "fn f(g: impl Fn(u8) -> u8) { mark(); }";
        let ctx = FileCtx::new("crates/stack/src/x.rs", src);
        let mark = ctx.toks.iter().position(|t| t.is_ident("mark")).unwrap();
        assert_eq!(ctx.fn_of[mark].as_deref(), Some("f"));
        assert_eq!(ctx.impl_of[mark], None);
    }

    #[test]
    fn generic_impl_and_nested_fn_qualification() {
        let src = "impl<K: Ord> Heap<K> { fn push(&mut self, k: K) { fn helper() { mark(); } } }";
        let ctx = FileCtx::new("crates/stack/src/x.rs", src);
        let mark = ctx.toks.iter().position(|t| t.is_ident("mark")).unwrap();
        // The nested helper is not a method: bare name.
        assert_eq!(ctx.fn_of[mark].as_deref(), Some("helper"));
        let k = ctx.toks.iter().rposition(|t| t.is_ident("k")).unwrap();
        assert_eq!(ctx.impl_of[k].as_deref(), Some("Heap"));
    }

    #[test]
    fn explain_extracts_rule_docs() {
        let text = explain("R9").expect("R9 is registered");
        assert!(text.starts_with("R9 clock-dataflow"));
        assert!(text.contains("PR 3"), "lineage must be stated: {text}");
        assert!(text.contains("Bad"), "needs a bad example: {text}");
        assert!(text.contains("Good"), "needs a good example: {text}");
        // Every registered rule must explain itself.
        for r in RULES {
            let t = explain(r.id).unwrap_or_else(|| panic!("{} has no explanation", r.id));
            assert!(
                t.contains(r.name),
                "{} explanation must name the rule",
                r.id
            );
        }
        assert!(explain("effect-coverage").is_some(), "lookup by name works");
        assert!(explain("R99").is_none());
    }

    #[test]
    fn allowlist_roundtrip() {
        let d = Diagnostic {
            rule: "R4",
            name: "panic-hygiene",
            severity: Severity::Error,
            path: "crates/stack/src/socket.rs".into(),
            line: 7,
            key: "fn:tcp_mut".into(),
            msg: "x".into(),
        };
        let allow = Allowlist::parse(
            "# comment\n\nR4 crates/stack/src/socket.rs fn:tcp_mut  # accessor contract\n",
        );
        assert_eq!(allow.len(), 1);
        assert!(allow.allows(&d));
    }
}
