//! `dvelm-lint` — repo-specific static analysis for the dvelm workspace.
//!
//! The reproduction rests on a deterministic simulation (fig5b/5c/timeline
//! outputs must stay byte-identical across PRs), and PR 3's review caught two
//! invariant violations a machine could have found: a stale sim clock
//! reaching the xlate TTL hot path, and a wildcard fallback misattributing
//! capture pressure. This crate encodes those incident classes — plus the
//! determinism and hygiene rules that prevent the next ones — as token-level
//! lint rules with `file:line` diagnostics:
//!
//! | rule | severity | scope | invariant |
//! |---|---|---|---|
//! | R1 `determinism` | error | sim, core, stack, cluster, lb | no `HashMap`/`HashSet`/`Instant::now`/`SystemTime::now`/`thread_rng` |
//! | R2 `clock-threading` | error | stack | `last_hit`/TTL state only behind a `now` parameter; no `SimTime::ZERO` fed to `*_at` calls |
//! | R3 `no-wildcard-arm` | error | all crates | no `_` arm in matches over `Effect`/`AbortReason`/`Fault`/`Event` |
//! | R4 `panic-hygiene` | error | core, stack | no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` |
//! | R5 `doc-hygiene` | warning | core, stack | every `pub` item documented |
//!
//! Test code (`#[cfg(test)]` / `#[test]` items, `tests/`, `benches/`) is
//! exempt from every rule; strings and comments never trigger rules (the
//! vendored [`lexer`] strips them). Grandfathered sites live in the
//! repo-root `lint.allow` file, keyed by `(rule, path, enclosing item)` so
//! entries survive line drift; CI fails if the file grows. `check` treats
//! warnings as errors (strict mode) so the tree stays clean.

pub mod lexer;
pub mod rules;

use lexer::{lex, Tok, TokKind};
use std::collections::BTreeSet;
use std::fmt;
use std::path::Path;

/// How bad a finding is. `check` denies both — the distinction is for
/// readers triaging output, not for gating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Style/completeness finding (R5).
    Warning,
    /// Invariant violation (R1–R4).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One lint finding at a specific source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id, e.g. `"R1"`.
    pub rule: &'static str,
    /// Short rule name, e.g. `"determinism"`.
    pub name: &'static str,
    /// Finding severity.
    pub severity: Severity,
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// 1-based source line.
    pub line: u32,
    /// Allowlist key: the enclosing item (`fn:name`, `item:name`) or `top`.
    /// Stable across line drift, unlike the line number.
    pub key: String,
    /// Human-readable explanation.
    pub msg: String,
}

impl Diagnostic {
    /// The `lint.allow` entry that would suppress this finding.
    pub fn allow_entry(&self) -> String {
        format!("{} {} {}", self.rule, self.path, self.key)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}[{}/{}] {} (allow key: {})",
            self.path, self.line, self.severity, self.rule, self.name, self.msg, self.key
        )
    }
}

/// A lexed file plus the derived per-token facts every rule needs.
pub struct FileCtx<'a> {
    /// Repo-relative path with `/` separators.
    pub path: &'a str,
    /// The token stream.
    pub toks: Vec<Tok>,
    /// For each token: inside a `#[cfg(test)]` / `#[test]` item?
    pub in_test: Vec<bool>,
    /// For each token: name of the innermost enclosing `fn`, if any.
    pub fn_of: Vec<Option<String>>,
}

impl<'a> FileCtx<'a> {
    /// Lex `src` and compute the test-region and enclosing-function maps.
    pub fn new(path: &'a str, src: &str) -> FileCtx<'a> {
        let toks = lex(src);
        let in_test = test_regions(&toks);
        let fn_of = enclosing_fns(&toks);
        FileCtx {
            path,
            toks,
            in_test,
            fn_of,
        }
    }

    /// Allowlist key for a finding at token `i`: the innermost enclosing
    /// function, or `top` for module-level code.
    pub fn key_at(&self, i: usize) -> String {
        match &self.fn_of[i] {
            Some(f) => format!("fn:{f}"),
            None => "top".to_string(),
        }
    }

    /// Whether `path` lives under any of the given crate prefixes.
    pub fn in_scope(&self, prefixes: &[&str]) -> bool {
        prefixes.iter().any(|p| self.path.starts_with(p))
    }
}

/// Mark tokens covered by `#[cfg(test)]` / `#[test]`-attributed items.
///
/// An attribute whose tokens contain the identifier `test` but not `not`
/// (so `#[cfg(not(test))]` stays live code) marks the next item — through
/// its `{ … }` body, or up to the `;` for bodyless items — as test-only.
fn test_regions(toks: &[Tok]) -> Vec<bool> {
    let mut in_test = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct('#')
            && matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokKind::Open('[')))
        {
            let close = match matching_close(toks, i + 1) {
                Some(c) => c,
                None => break,
            };
            let attr = &toks[i + 2..close];
            let has_test = attr.iter().any(|t| t.is_ident("test"));
            let has_not = attr.iter().any(|t| t.is_ident("not"));
            if has_test && !has_not {
                let end = item_end(toks, close + 1);
                for flag in in_test.iter_mut().take(end + 1).skip(i) {
                    *flag = true;
                }
                i = end + 1;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    in_test
}

/// Index of the last token of the item starting at `start` (skipping further
/// attributes): the matching `}` of its first top-level brace group, or the
/// first top-level `;` for bodyless items.
fn item_end(toks: &[Tok], start: usize) -> usize {
    let mut i = start;
    // Skip stacked attributes.
    while i < toks.len()
        && toks[i].is_punct('#')
        && matches!(toks.get(i + 1).map(|t| &t.kind), Some(TokKind::Open('[')))
    {
        match matching_close(toks, i + 1) {
            Some(c) => i = c + 1,
            None => return toks.len().saturating_sub(1),
        }
    }
    let mut depth = 0i32;
    while i < toks.len() {
        match toks[i].kind {
            TokKind::Open('{') => {
                return matching_close(toks, i).unwrap_or(toks.len() - 1);
            }
            TokKind::Open(_) => depth += 1,
            TokKind::Close(_) => depth -= 1,
            TokKind::Punct(';') if depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Index of the delimiter closing the one opened at `open`.
pub fn matching_close(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (i, t) in toks.iter().enumerate().skip(open) {
        match t.kind {
            TokKind::Open(_) => depth += 1,
            TokKind::Close(_) => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// For each token, the name of the innermost enclosing `fn` body.
fn enclosing_fns(toks: &[Tok]) -> Vec<Option<String>> {
    let mut out = vec![None; toks.len()];
    // Stack of (fn name, brace depth at which its body opened).
    let mut stack: Vec<(String, u32)> = Vec::new();
    let mut pending: Option<String> = None;
    let mut depth = 0u32;
    for (i, t) in toks.iter().enumerate() {
        match &t.kind {
            TokKind::Ident if t.text == "fn" => {
                if let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                    pending = Some(name.text.clone());
                }
            }
            TokKind::Punct(';') if depth == stack.last().map_or(0, |(_, d)| *d) => {
                // Bodyless declaration (trait method): discard.
                pending = None;
            }
            TokKind::Open('{') => {
                depth += 1;
                if let Some(name) = pending.take() {
                    stack.push((name, depth));
                }
            }
            TokKind::Close('}') => {
                if stack.last().is_some_and(|(_, d)| *d == depth) {
                    stack.pop();
                }
                depth = depth.saturating_sub(1);
            }
            _ => {}
        }
        out[i] = stack.last().map(|(n, _)| n.clone());
    }
    out
}

/// Run every rule over one file. `path` must be repo-relative with `/`
/// separators — rule scoping matches on its prefix.
pub fn lint_file(path: &str, src: &str) -> Vec<Diagnostic> {
    let ctx = FileCtx::new(path, src);
    let mut out = Vec::new();
    rules::r1_determinism(&ctx, &mut out);
    rules::r2_clock_threading(&ctx, &mut out);
    rules::r3_no_wildcard_arm(&ctx, &mut out);
    rules::r4_panic_hygiene(&ctx, &mut out);
    rules::r5_doc_hygiene(&ctx, &mut out);
    rules::r6_shard_isolation(&ctx, &mut out);
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// The parsed `lint.allow` file: entries of the form `RULE path key`,
/// `#`-comments and blank lines ignored.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: BTreeSet<String>,
}

impl Allowlist {
    /// Parse allowlist text.
    pub fn parse(text: &str) -> Allowlist {
        let entries = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            // Normalize interior whitespace so "R4  a/b.rs  fn:x # why"
            // and "R4 a/b.rs fn:x" are the same entry.
            .map(|l| {
                l.split_whitespace()
                    .take_while(|w| !w.starts_with('#'))
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .filter(|l| !l.is_empty())
            .collect();
        Allowlist { entries }
    }

    /// Whether `d` is suppressed by this allowlist.
    pub fn allows(&self, d: &Diagnostic) -> bool {
        self.entries.contains(&d.allow_entry())
    }

    /// Number of entries (the CI growth guard compares this).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the allowlist has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries that suppressed nothing in this run — stale grandfathering
    /// that should be deleted.
    pub fn unused<'a>(&'a self, used: &BTreeSet<String>) -> Vec<&'a str> {
        self.entries
            .iter()
            .filter(|e| !used.contains(*e))
            .map(String::as_str)
            .collect()
    }
}

/// Result of a whole-workspace check.
pub struct CheckReport {
    /// Findings not covered by the allowlist, sorted by (path, line).
    pub findings: Vec<Diagnostic>,
    /// Findings suppressed by the allowlist.
    pub allowed: usize,
    /// Allowlist entries that matched nothing.
    pub stale_allows: Vec<String>,
    /// Files scanned.
    pub files: usize,
}

/// Walk every workspace source directory under `root` (`crates/*/src` and
/// the umbrella crate's `src/`), lint each `.rs` file, and apply `allow`.
/// `compat/` stubs and this crate's own `tests/fixtures` are outside the
/// walked set by construction.
pub fn check_workspace(root: &Path, allow: &Allowlist) -> std::io::Result<CheckReport> {
    let mut files: Vec<std::path::PathBuf> = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<_> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        members.sort();
        for member in members {
            collect_rs(&member.join("src"), &mut files)?;
        }
    }
    collect_rs(&root.join("src"), &mut files)?;
    files.sort();

    let mut findings = Vec::new();
    let mut allowed = 0usize;
    let mut used = BTreeSet::new();
    let scanned = files.len();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let src = std::fs::read_to_string(&file)?;
        for d in lint_file(&rel, &src) {
            if allow.allows(&d) {
                allowed += 1;
                used.insert(d.allow_entry());
            } else {
                findings.push(d);
            }
        }
    }
    findings.sort_by_key(|a| (a.path.clone(), a.line));
    let stale_allows = allow.unused(&used).into_iter().map(String::from).collect();
    Ok(CheckReport {
        findings,
        allowed,
        stale_allows,
        files: scanned,
    })
}

/// Recursively collect `.rs` files under `dir` (no-op if it doesn't exist).
fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_cover_cfg_test_mod() {
        let src = "fn live() {} #[cfg(test)] mod tests { fn hidden() {} }";
        let ctx = FileCtx::new("crates/stack/src/x.rs", src);
        let hidden = ctx.toks.iter().position(|t| t.is_ident("hidden")).unwrap();
        let live = ctx.toks.iter().position(|t| t.is_ident("live")).unwrap();
        assert!(ctx.in_test[hidden]);
        assert!(!ctx.in_test[live]);
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        let src = "#[cfg(not(test))] fn live() {}";
        let ctx = FileCtx::new("crates/stack/src/x.rs", src);
        let live = ctx.toks.iter().position(|t| t.is_ident("live")).unwrap();
        assert!(!ctx.in_test[live]);
    }

    #[test]
    fn enclosing_fn_names_nested() {
        let src = "fn outer() { fn inner() { mark(); } }";
        let ctx = FileCtx::new("crates/stack/src/x.rs", src);
        let mark = ctx.toks.iter().position(|t| t.is_ident("mark")).unwrap();
        assert_eq!(ctx.fn_of[mark].as_deref(), Some("inner"));
    }

    #[test]
    fn allowlist_roundtrip() {
        let d = Diagnostic {
            rule: "R4",
            name: "panic-hygiene",
            severity: Severity::Error,
            path: "crates/stack/src/socket.rs".into(),
            line: 7,
            key: "fn:tcp_mut".into(),
            msg: "x".into(),
        };
        let allow = Allowlist::parse(
            "# comment\n\nR4 crates/stack/src/socket.rs fn:tcp_mut  # accessor contract\n",
        );
        assert_eq!(allow.len(), 1);
        assert!(allow.allows(&d));
    }
}
