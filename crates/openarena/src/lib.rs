//! OpenArena-like FPS game server and clients (§VI-B).
//!
//! The paper evaluates live migration on an OpenArena (Quake III engine)
//! server with 24 connected clients: UDP transport, 20 server snapshots per
//! second (one every 50 ms), and measures the packet-level delay imposed by
//! the migration with tcpdump (Fig. 4), observing ≈20 ms of server freeze
//! and ≈25 ms of extra delay on the wire, invisible to the clients.
//!
//! This crate provides the server/client [`App`](dvelm_cluster::App)s, a
//! ready-made scenario builder, and the tcpdump-style trace analysis that
//! regenerates Fig. 4.

pub mod apps;
pub mod scenario;
pub mod trace;

pub use apps::{OaClient, OaServer};
pub use scenario::{run_scenario, OaResult, OaScenario};
pub use trace::{fig4_series, migration_delay_us, snapshot_gaps_ms, Fig4Point};
