//! The §VI-B experiment: an OpenArena server with 24 clients, live-migrated
//! mid-game.

use crate::apps::{OaClient, OaServer, OA_PORT};
use dvelm_cluster::{world::PacketLogEntry, World, WorldConfig};
use dvelm_migrate::{MigrationReport, Strategy};
use dvelm_net::{Ip, Port, SockAddr};
use dvelm_sim::{SimTime, SECOND};
use std::cell::RefCell;
use std::rc::Rc;

/// Scenario parameters.
#[derive(Debug, Clone)]
pub struct OaScenario {
    /// Connected clients (the paper uses 24).
    pub n_clients: usize,
    /// When to start the migration.
    pub migrate_at: SimTime,
    /// Socket-migration strategy.
    pub strategy: Strategy,
    /// Total simulated duration.
    pub run_for: SimTime,
    /// RNG seed.
    pub seed: u64,
    /// Disable the capture hook on the destination (loss-prevention
    /// ablation).
    pub disable_capture: bool,
}

impl Default for OaScenario {
    fn default() -> Self {
        OaScenario {
            n_clients: 24,
            migrate_at: SimTime::from_secs(5),
            strategy: Strategy::IncrementalCollective,
            run_for: SimTime::from_secs(10),
            seed: 42,
            disable_capture: false,
        }
    }
}

/// What the run produced.
pub struct OaResult {
    /// Server-side tcpdump (all frames on the game port).
    pub packet_log: Vec<PacketLogEntry>,
    /// The migration measurement.
    pub report: Option<MigrationReport>,
    /// Usercmds the server processed.
    pub server_usercmds: u64,
    /// Per-client snapshot arrival instants.
    pub client_arrivals: Vec<Vec<SimTime>>,
    /// Host index of source and destination nodes.
    pub src_host: usize,
    pub dst_host: usize,
}

/// Build and run the scenario.
pub fn run_scenario(s: &OaScenario) -> OaResult {
    let mut cfg = WorldConfig {
        seed: s.seed,
        ..WorldConfig::default()
    };
    cfg.strategy = s.strategy;
    let mut w = World::new(cfg);
    let n0 = w.add_server_node();
    let n1 = w.add_server_node();
    if s.disable_capture {
        use dvelm_stack::netfilter::{HookKind, HookPoint};
        w.hosts[n1]
            .stack
            .netfilter
            .unregister(HookPoint::LocalIn, HookKind::Capture);
    }
    w.enable_packet_log(Port(OA_PORT));

    let usercmds = Rc::new(RefCell::new(0u64));
    let server = w.spawn_process(
        n0,
        "oa_server",
        512,
        4096,
        Box::new(OaServer::new(usercmds.clone())),
    );
    let addr = SockAddr::new(Ip::CLUSTER_PUBLIC, OA_PORT);
    w.app_udp_bind(n0, server, addr);

    let mut arrivals = Vec::new();
    for _ in 0..s.n_clients {
        let ch = w.add_client_host();
        let arr = Rc::new(RefCell::new(Vec::new()));
        arrivals.push(arr.clone());
        let pid = w.spawn_process(ch, "oa_client", 64, 256, Box::new(OaClient::new(addr, arr)));
        w.app_udp_socket(ch, pid, Some(addr));
    }

    w.run_until(s.migrate_at);
    w.begin_migration(server, n1, s.strategy);
    w.run_until(s.run_for);
    // Drain any in-flight work shortly past the end.
    w.run_for(SECOND / 10);

    let server_usercmds = *usercmds.borrow();
    OaResult {
        packet_log: std::mem::take(&mut w.packet_log),
        report: w.reports.first().cloned(),
        server_usercmds,
        client_arrivals: arrivals.iter().map(|a| a.borrow().clone()).collect(),
        src_host: n0,
        dst_host: n1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvelm_sim::MILLISECOND;

    #[test]
    fn oa_migration_is_transparent_to_clients() {
        let s = OaScenario {
            n_clients: 8,
            run_for: SimTime::from_secs(8),
            ..OaScenario::default()
        };
        let r = run_scenario(&s);
        let report = r.report.expect("migration ran");
        assert!(
            report.freeze_us() < 60 * MILLISECOND,
            "freeze {}µs too long for an interactive game",
            report.freeze_us()
        );
        assert!(r.server_usercmds > 500, "server processed a steady stream");
        // Every client kept receiving snapshots after the migration.
        for arr in &r.client_arrivals {
            let after = arr
                .iter()
                .filter(|t| **t > s.migrate_at + 2 * SECOND)
                .count();
            assert!(after > 10, "client starved after migration: {after}");
        }
    }
}
