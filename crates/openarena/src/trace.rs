//! tcpdump-style trace analysis: regenerating Fig. 4.
//!
//! Fig. 4 plots server→client packet numbers against time elapsed around the
//! migration: the regular execution shows a packet group every 50 ms; the
//! migration inserts an extra delay of ≈25 ms between the last packet of the
//! source node and the first packet of the destination node.

use dvelm_cluster::world::PacketLogEntry;
use dvelm_net::Port;
use dvelm_sim::SimTime;

/// One Fig. 4 data point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig4Point {
    /// Sequential number of the server→client packet.
    pub packet_no: u32,
    /// Milliseconds relative to the start of the analysis window.
    pub t_ms: f64,
    /// Whether the packet was transmitted by the destination node.
    pub from_dst: bool,
}

/// Server→client packets (src port = game port) in
/// `[center - half_window, center + half_window]`, numbered sequentially —
/// the data behind Fig. 4.
pub fn fig4_series(
    log: &[PacketLogEntry],
    server_port: Port,
    dst_host: usize,
    center: SimTime,
    half_window_us: u64,
) -> Vec<Fig4Point> {
    let from = SimTime(center.0.saturating_sub(half_window_us));
    let to = center + half_window_us;
    log.iter()
        .filter(|e| e.src.port == server_port && e.at >= from && e.at <= to)
        .enumerate()
        .map(|(i, e)| Fig4Point {
            packet_no: i as u32 + 1,
            t_ms: (e.at.saturating_since(from)) as f64 / 1000.0,
            from_dst: e.from_host == dst_host,
        })
        .collect()
}

/// The migration-imposed packet delay: the gap between the last server
/// packet transmitted by the source node and the first transmitted by the
/// destination node (the ≈25 ms annotation in Fig. 4).
pub fn migration_delay_us(
    log: &[PacketLogEntry],
    server_port: Port,
    src_host: usize,
    dst_host: usize,
) -> Option<u64> {
    let last_src = log
        .iter()
        .filter(|e| e.src.port == server_port && e.from_host == src_host)
        .map(|e| e.at)
        .max()?;
    let first_dst = log
        .iter()
        .filter(|e| e.src.port == server_port && e.from_host == dst_host && e.at > last_src)
        .map(|e| e.at)
        .min()?;
    Some(first_dst - last_src)
}

/// Gaps between consecutive snapshot *bursts* in milliseconds. Packets
/// closer than `burst_gap_us` belong to the same burst (one snapshot round
/// to all clients). The regular cadence is 50 ms; the migration shows up as
/// one larger gap.
pub fn snapshot_gaps_ms(log: &[PacketLogEntry], server_port: Port, burst_gap_us: u64) -> Vec<f64> {
    let mut times: Vec<SimTime> = log
        .iter()
        .filter(|e| e.src.port == server_port)
        .map(|e| e.at)
        .collect();
    times.sort_unstable();
    let mut bursts: Vec<SimTime> = Vec::new();
    for t in times {
        match bursts.last() {
            Some(last) if t.saturating_since(*last) < burst_gap_us => {}
            _ => bursts.push(t),
        }
    }
    bursts
        .windows(2)
        .map(|w| (w[1] - w[0]) as f64 / 1000.0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvelm_net::{Ip, SockAddr};

    fn entry(at_us: u64, from_host: usize, sport: u16) -> PacketLogEntry {
        PacketLogEntry {
            at: SimTime::from_micros(at_us),
            from_host,
            src: SockAddr::new(Ip::CLUSTER_PUBLIC, sport),
            dst: SockAddr::new(Ip::client_of(dvelm_net::NodeId(9)), 5000),
            bytes: 256 + 28,
        }
    }

    /// A synthetic trace: snapshots every 50 ms from host 0, then a 75 ms
    /// hole, then host 1 takes over.
    fn synthetic() -> Vec<PacketLogEntry> {
        let mut log = Vec::new();
        for i in 0..4u64 {
            log.push(entry(50_000 * (i + 1), 0, 27960));
        }
        // Migration at ~225 ms: next snapshot late by 25 ms.
        for i in 0..4u64 {
            log.push(entry(275_000 + 50_000 * i, 1, 27960));
        }
        log
    }

    #[test]
    fn delay_is_measured_between_hosts() {
        let log = synthetic();
        let d = migration_delay_us(&log, Port(27960), 0, 1).unwrap();
        assert_eq!(d, 75_000, "200ms → 275ms gap");
    }

    #[test]
    fn gaps_show_the_cadence_and_the_hole() {
        let log = synthetic();
        let gaps = snapshot_gaps_ms(&log, Port(27960), 10_000);
        assert_eq!(gaps.len(), 7);
        assert!(gaps.iter().filter(|g| (**g - 50.0).abs() < 0.01).count() >= 6);
        assert!(gaps.contains(&75.0));
    }

    #[test]
    fn fig4_series_is_windowed_and_numbered() {
        let log = synthetic();
        let pts = fig4_series(&log, Port(27960), 1, SimTime::from_micros(225_000), 150_000);
        assert!(!pts.is_empty());
        assert_eq!(pts[0].packet_no, 1);
        assert!(pts.iter().any(|p| p.from_dst));
        assert!(pts.iter().any(|p| !p.from_dst));
        // Monotone numbering and time.
        assert!(pts
            .windows(2)
            .all(|w| w[0].packet_no < w[1].packet_no && w[0].t_ms <= w[1].t_ms));
    }

    #[test]
    fn other_ports_are_ignored() {
        let mut log = synthetic();
        log.push(entry(100_000, 0, 1234));
        let gaps = snapshot_gaps_ms(&log, Port(27960), 10_000);
        assert_eq!(gaps.len(), 7, "foreign port did not add bursts");
    }
}
