//! The game server and client applications.

use bytes::Bytes;
use dvelm_cluster::{App, AppCtx};
use dvelm_net::SockAddr;
use dvelm_proc::Fd;
use dvelm_sim::{SimTime, MILLISECOND};
use dvelm_stack::udp::Datagram;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

/// Default OpenArena server port.
pub const OA_PORT: u16 = 27960;
/// Snapshot payload size, bytes (256 B — the MMOG average the paper cites).
pub const SNAPSHOT_BYTES: usize = 256;
/// Client usercmd payload size, bytes.
pub const USERCMD_BYTES: usize = 48;

/// The game server: one UDP socket for all clients (Quake III style), a
/// 10 ms internal frame loop, snapshots to every known client every 50 ms.
pub struct OaServer {
    fd: Option<Fd>,
    /// Clients learned from their usercmds.
    clients: BTreeSet<SockAddr>,
    /// Next snapshot round is due at this instant (time-based, like the
    /// engine's `nextSnapshotTime`): a freeze visibly *shifts* the cadence
    /// instead of silently rephasing it.
    next_snapshot_at: SimTime,
    /// Pages dirtied per 10 ms frame (world state, entity snapshots ring,
    /// etc.). Calibrated so the final 20 ms precopy window leaves ≈2 MB of
    /// dirty memory → ≈20 ms freeze, matching §VI-B.
    pub dirty_pages_per_frame: usize,
    /// Usercmds received (statistic).
    pub usercmds: Rc<RefCell<u64>>,
}

/// Snapshot interval: 20 updates per second (the engine default).
pub const SNAPSHOT_INTERVAL_US: u64 = 50 * MILLISECOND;

impl OaServer {
    /// A server with the calibrated default dirty rate.
    pub fn new(usercmds: Rc<RefCell<u64>>) -> OaServer {
        OaServer {
            fd: None,
            clients: BTreeSet::new(),
            next_snapshot_at: SimTime::ZERO,
            dirty_pages_per_frame: 400,
            usercmds,
        }
    }

    /// Connected client count.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }
}

impl App for OaServer {
    fn on_tick(&mut self, ctx: &mut AppCtx<'_>) {
        if self.fd.is_none() {
            self.fd = ctx.socket_fds().first().copied();
        }
        ctx.touch_memory(self.dirty_pages_per_frame);
        ctx.set_cpu_share(10.0 + self.clients.len() as f64 * 0.8);
        // Time-based snapshots at 20 updates/s: an overdue round (e.g. after
        // a migration freeze) fires on the first frame back.
        if ctx.now >= self.next_snapshot_at {
            self.next_snapshot_at = ctx.now + SNAPSHOT_INTERVAL_US;
            if let Some(fd) = self.fd {
                let snap = Bytes::from(vec![0xA5u8; SNAPSHOT_BYTES]);
                let clients: Vec<SockAddr> = self.clients.iter().copied().collect();
                for c in clients {
                    ctx.send_udp_to(fd, c, snap.clone());
                }
            }
        }
    }

    fn on_udp_data(&mut self, ctx: &mut AppCtx<'_>, _fd: Fd, dgrams: &[Datagram]) {
        for d in dgrams {
            self.clients.insert(d.from);
            *self.usercmds.borrow_mut() += 1;
        }
        ctx.touch_memory(1);
    }

    fn tick_period_us(&self) -> u64 {
        10 * MILLISECOND
    }
}

/// One game client: sends a usercmd every 50 ms, records snapshot arrival
/// times.
pub struct OaClient {
    fd: Option<Fd>,
    server: SockAddr,
    /// Arrival instants of received snapshots.
    pub arrivals: Rc<RefCell<Vec<SimTime>>>,
}

impl OaClient {
    /// A client of `server`.
    pub fn new(server: SockAddr, arrivals: Rc<RefCell<Vec<SimTime>>>) -> OaClient {
        OaClient {
            fd: None,
            server,
            arrivals,
        }
    }
}

impl App for OaClient {
    fn on_tick(&mut self, ctx: &mut AppCtx<'_>) {
        if self.fd.is_none() {
            self.fd = ctx.socket_fds().first().copied();
        }
        if let Some(fd) = self.fd {
            ctx.send_udp_to(fd, self.server, Bytes::from(vec![0x11u8; USERCMD_BYTES]));
        }
    }

    fn on_udp_data(&mut self, ctx: &mut AppCtx<'_>, _fd: Fd, dgrams: &[Datagram]) {
        let mut arr = self.arrivals.borrow_mut();
        for _ in dgrams {
            arr.push(ctx.now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_constants_match_quake_defaults() {
        let s = OaServer::new(Rc::new(RefCell::new(0)));
        // 10 ms frames; time-based snapshots at 20/s.
        assert_eq!(s.tick_period_us(), 10_000);
        assert_eq!(s.client_count(), 0);
        assert_eq!(SNAPSHOT_BYTES, 256);
    }
}
