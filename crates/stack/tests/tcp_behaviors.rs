//! Focused TCP behaviour tests at the host-stack level: congestion-window
//! dynamics, retransmission-timeout clamps, flow control and connection
//! table hygiene — the machinery whose state socket migration must preserve.

use bytes::Bytes;
use dvelm_net::{NodeId, SockAddr};
use dvelm_sim::{SimTime, MILLISECOND, SECOND};
use dvelm_stack::tcp::{INITIAL_CWND, MSS, RTO_MAX_US, RTO_MIN_US};
use dvelm_stack::{HostStack, SockId, StackEffect, TcpState};

/// Two stacks with a zero-latency lossless wire.
struct Pair {
    a: HostStack,
    b: HostStack,
    now: SimTime,
}

impl Pair {
    fn new() -> Pair {
        Pair {
            a: HostStack::server_node(NodeId(0), 100, 1),
            b: HostStack::server_node(NodeId(1), 9_999, 2),
            now: SimTime::ZERO,
        }
    }

    fn pump(&mut self, from_a: bool, fx: Vec<StackEffect>) {
        // FIFO delivery: the wire preserves transmission order.
        let mut queue: std::collections::VecDeque<(bool, StackEffect)> =
            fx.into_iter().map(|e| (from_a, e)).collect();
        while let Some((from_a, e)) = queue.pop_front() {
            if let StackEffect::Tx { seg, route } = e {
                let (target_is_a, target) = if route == self.a.local_ip || route == self.a.public_ip
                {
                    (true, &mut self.a)
                } else if route == self.b.local_ip || route == self.b.public_ip {
                    (false, &mut self.b)
                } else {
                    continue;
                };
                let fx = target.on_rx(seg, self.now);
                queue.extend(fx.into_iter().map(|e| (target_is_a, e)));
                let _ = from_a;
            }
        }
    }

    fn establish(&mut self, port: u16) -> (SockId, SockId) {
        let saddr = SockAddr::new(self.a.local_ip, port);
        let lid = self.a.tcp_listen(saddr).unwrap();
        let (cid, fx) = self.b.tcp_connect_local(saddr, self.now);
        self.pump(false, fx);
        let child = self
            .a
            .socket_ids()
            .into_iter()
            .rfind(|s| *s != lid)
            .expect("child");
        assert_eq!(
            self.a.sock(child).unwrap().tcp().state,
            TcpState::Established
        );
        (cid, child)
    }
}

#[test]
fn slow_start_doubles_cwnd_per_round() {
    let mut p = Pair::new();
    let (cid, _child) = p.establish(4000);
    let cwnd0 = p.a.sock(p.a.socket_ids()[1]).map(|_| 0); // silence unused warnings
    let _ = cwnd0;
    let before = p.b.sock(cid).unwrap().tcp().cwnd();
    assert_eq!(before, INITIAL_CWND);
    // One window's worth of data, fully acked in one round trip.
    let fx =
        p.b.send(cid, Bytes::from(vec![0u8; INITIAL_CWND as usize]), p.now);
    p.pump(false, fx);
    let after = p.b.sock(cid).unwrap().tcp().cwnd();
    assert!(
        after >= before + 9 * MSS,
        "slow start roughly doubles: {before} → {after}"
    );
}

#[test]
fn rto_is_clamped_between_min_and_max() {
    let mut p = Pair::new();
    let (cid, child) = p.establish(4001);
    // Sub-jiffy RTT on the LAN: the sample is ~0 → RTO floors at RTO_MIN.
    let fx = p.b.send(cid, Bytes::from_static(b"x"), p.now);
    p.pump(false, fx);
    let rto = p.b.sock(cid).unwrap().tcp().rto_us();
    assert!(rto >= RTO_MIN_US, "rto {rto} under the floor");
    assert!(
        rto <= 2 * RTO_MIN_US,
        "rto {rto} unexpectedly large on a LAN"
    );

    // Exponential backoff caps at RTO_MAX: detach the peer and fire the
    // timer many times.
    p.a.detach_socket(child);
    let fx = p.b.send(cid, Bytes::from_static(b"lost"), p.now);
    let mut timer = None;
    for e in &fx {
        if let StackEffect::ArmTimer { sock, gen, at } = e {
            timer = Some((*sock, *gen, *at));
        }
    }
    p.pump(false, fx);
    let (sock, mut gen, mut at) = timer.expect("armed");
    for _ in 0..30 {
        p.now = at;
        let fx = p.b.on_timer(sock, gen, p.now);
        let mut next = None;
        for e in &fx {
            if let StackEffect::ArmTimer { gen: g, at: a, .. } = e {
                next = Some((*g, *a));
            }
        }
        p.pump(false, fx);
        match next {
            Some((g, a)) => {
                gen = g;
                at = a;
            }
            None => break,
        }
    }
    let rto = p.b.sock(cid).unwrap().tcp().rto_us();
    assert_eq!(rto, RTO_MAX_US, "backoff must clamp at RTO_MAX");
}

#[test]
fn rto_collapse_resets_cwnd_and_halves_ssthresh() {
    let mut p = Pair::new();
    let (cid, child) = p.establish(4002);
    // Grow cwnd a little first.
    let fx =
        p.b.send(cid, Bytes::from(vec![0u8; 4 * MSS as usize]), p.now);
    p.pump(false, fx);
    let grown = p.b.sock(cid).unwrap().tcp().cwnd();
    assert!(grown > INITIAL_CWND);

    p.a.detach_socket(child);
    let fx =
        p.b.send(cid, Bytes::from(vec![0u8; 2 * MSS as usize]), p.now);
    let mut timer = None;
    for e in &fx {
        if let StackEffect::ArmTimer { sock, gen, at } = e {
            timer = Some((*sock, *gen, *at));
        }
    }
    p.pump(false, fx);
    let (sock, gen, at) = timer.expect("armed");
    p.now = at;
    let fx = p.b.on_timer(sock, gen, p.now);
    p.pump(false, fx);
    assert_eq!(
        p.b.sock(cid).unwrap().tcp().cwnd(),
        MSS,
        "loss collapses cwnd to one MSS"
    );
}

#[test]
fn flight_never_exceeds_min_of_windows() {
    let mut p = Pair::new();
    let (cid, _child) = p.establish(4003);
    // Try to send far more than the initial congestion window at once.
    let big = vec![0u8; 40 * MSS as usize];
    // Don't pump: nothing is acked, so flight is capped by cwnd.
    let fx = p.b.send(cid, Bytes::from(big), p.now);
    let t = p.b.sock(cid).unwrap().tcp();
    assert!(
        t.flight() <= t.cwnd(),
        "flight {} > cwnd {}",
        t.flight(),
        t.cwnd()
    );
    drop(fx); // segments intentionally discarded (simulated loss)
}

#[test]
fn established_table_entry_lifecycle() {
    let mut p = Pair::new();
    let (cid, child) = p.establish(4004);
    let b_local = p.b.sock(cid).unwrap().local();
    let a_local = p.a.sock(child).unwrap().local();
    assert!(p.a.has_established(a_local, b_local));
    assert!(p.b.has_established(b_local, a_local));

    // Graceful close from b; drive both FIN handshakes.
    let fx = p.b.close(cid, p.now);
    p.pump(false, fx);
    let fx = p.a.close(child, p.now);
    p.pump(true, fx);
    assert!(
        !p.a.has_established(a_local, b_local),
        "closed connection unhashed on a"
    );
    assert_eq!(p.a.sock(child).unwrap().tcp().state, TcpState::Closed);
    // b reached TimeWait (it closed first).
    assert_eq!(p.b.sock(cid).unwrap().tcp().state, TcpState::TimeWait);
}

#[test]
fn many_connections_have_distinct_ephemeral_ports() {
    let mut p = Pair::new();
    let saddr = SockAddr::new(p.a.local_ip, 4005);
    p.a.tcp_listen(saddr).unwrap();
    let mut ports = std::collections::HashSet::new();
    for _ in 0..200 {
        let (cid, fx) = p.b.tcp_connect_local(saddr, p.now);
        p.pump(false, fx);
        assert!(ports.insert(p.b.sock(cid).unwrap().local().port));
    }
    assert_eq!(p.a.socket_count(), 201, "200 children + listener");
}

#[test]
fn srtt_tracks_injected_delay() {
    let mut p = Pair::new();
    let (cid, child) = p.establish(4006);
    // Manually shuttle with a 40 ms ACK delay (4 jiffies).
    for _ in 0..8 {
        let fx = p.b.send(cid, Bytes::from_static(b"probe"), p.now);
        // Collect the data segment.
        let mut segs = Vec::new();
        for e in fx {
            if let StackEffect::Tx { seg, .. } = e {
                segs.push(seg);
            }
        }
        p.now += 40 * MILLISECOND;
        for seg in segs {
            let replies = p.a.on_rx(seg, p.now);
            p.pump(true, replies);
        }
        p.a.read_tcp(child, p.now);
    }
    let srtt = p.b.sock(cid).unwrap().tcp().srtt_us();
    assert!(
        (30 * MILLISECOND..=50 * MILLISECOND).contains(&srtt),
        "srtt {srtt}µs should reflect the 40 ms injected delay"
    );
    let rto = p.b.sock(cid).unwrap().tcp().rto_us();
    assert!((RTO_MIN_US..SECOND).contains(&rto));
}
