//! TCP torture tests: the stream abstraction must survive a hostile wire.
//!
//! A miniature event loop connects two host stacks through a wire that can
//! drop, duplicate and reorder segments. Whatever the wire does, the
//! receiving application must observe every sent byte exactly once, in
//! order — the invariant socket migration later relies on (re-injected
//! captured packets are just another source of duplication/reordering).

use bytes::Bytes;
use dvelm_net::{Ip, NodeId, SockAddr};
use dvelm_sim::{DetRng, EventQueue, SimTime, MILLISECOND, SECOND};
use dvelm_stack::{HostStack, SockId, StackEffect, TcpState};

enum Ev {
    Deliver {
        host: usize,
        seg: dvelm_stack::Segment,
    },
    Timer {
        host: usize,
        sock: SockId,
        gen: u64,
    },
}

struct Wire {
    /// Drop probability per traversal.
    loss: f64,
    /// Duplication probability per traversal.
    dup: f64,
    /// Max extra delay µs (uniform), on top of the 500 µs base.
    jitter_us: u64,
}

struct Torture {
    hosts: [HostStack; 2],
    queue: EventQueue<Ev>,
    now: SimTime,
    rng: DetRng,
    wire: Wire,
}

impl Torture {
    fn new(seed: u64, wire: Wire) -> Torture {
        Torture {
            hosts: [
                HostStack::server_node(NodeId(0), 1_000, seed ^ 1),
                HostStack::server_node(NodeId(1), 2_000, seed ^ 2),
            ],
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng: DetRng::new(seed),
            wire,
        }
    }

    fn host_of_ip(&self, ip: Ip) -> Option<usize> {
        self.hosts
            .iter()
            .position(|h| h.local_ip == ip || h.public_ip == ip)
    }

    fn apply(&mut self, from: usize, fx: Vec<StackEffect>) {
        for e in fx {
            match e {
                StackEffect::Tx { seg, route } => {
                    let Some(target) = self.host_of_ip(route) else {
                        continue;
                    };
                    let mut copies = 1;
                    if self.rng.chance(self.wire.loss) {
                        copies = 0;
                    } else if self.rng.chance(self.wire.dup) {
                        copies = 2;
                    }
                    for _ in 0..copies {
                        let delay = 500 + self.rng.range_u64(0, self.wire.jitter_us.max(1));
                        self.queue.push(
                            self.now + delay,
                            Ev::Deliver {
                                host: target,
                                seg: seg.clone(),
                            },
                        );
                    }
                }
                StackEffect::ArmTimer { sock, gen, at } => {
                    self.queue.push(
                        at,
                        Ev::Timer {
                            host: from,
                            sock,
                            gen,
                        },
                    );
                }
                _ => {}
            }
        }
    }

    fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            let (t, ev) = self.queue.pop().expect("peeked");
            self.now = t;
            match ev {
                Ev::Deliver { host, seg } => {
                    let fx = self.hosts[host].on_rx(seg, t);
                    self.apply(host, fx);
                }
                Ev::Timer { host, sock, gen } => {
                    let fx = self.hosts[host].on_timer(sock, gen, t);
                    self.apply(host, fx);
                }
            }
        }
        self.now = deadline;
    }

    /// Establish a connection host1 → host0:7777; returns (client, server
    /// child).
    fn establish(&mut self) -> (SockId, SockId) {
        let saddr = SockAddr::new(self.hosts[0].local_ip, 7777);
        let lid = self.hosts[0].tcp_listen(saddr).expect("listen");
        let (cid, fx) = self.hosts[1].tcp_connect_local(saddr, self.now);
        self.apply(1, fx);
        // Drive the handshake (retransmissions may be needed under loss).
        let mut deadline = self.now + 50 * MILLISECOND;
        loop {
            self.run_until(deadline);
            let established = self.hosts[1]
                .sock(cid)
                .is_some_and(|s| s.tcp().state == TcpState::Established);
            if established {
                break;
            }
            deadline += SECOND;
            assert!(
                deadline < SimTime::from_secs(600),
                "handshake never completed"
            );
        }
        let child = self.hosts[0]
            .socket_ids()
            .into_iter()
            .find(|s| *s != lid)
            .expect("child accepted");
        (cid, child)
    }
}

fn torture_roundtrip(seed: u64, wire: Wire, chunks: usize) {
    let mut t = Torture::new(seed, wire);
    let (cid, child) = t.establish();

    // Send numbered chunks with pacing; the wire mangles them.
    let mut sent = Vec::new();
    for i in 0..chunks {
        let msg = format!("chunk-{i:05};");
        sent.extend_from_slice(msg.as_bytes());
        let fx = t.hosts[1].send(cid, Bytes::from(msg), t.now);
        t.apply(1, fx);
        let step = t.now + 2 * MILLISECOND;
        t.run_until(step);
    }

    // Let retransmissions drain everything (RTO can back off a lot under
    // heavy loss).
    let mut received: Vec<u8> = Vec::new();
    let mut deadline = t.now + SECOND;
    for _ in 0..600 {
        t.run_until(deadline);
        received.extend(
            t.hosts[0]
                .read_tcp(child, t.now)
                .iter()
                .flat_map(|s| s.payload.to_vec()),
        );
        if received.len() == sent.len() {
            break;
        }
        deadline += SECOND;
    }
    assert_eq!(
        received.len(),
        sent.len(),
        "seed {seed}: byte count mismatch ({} vs {})",
        received.len(),
        sent.len()
    );
    assert_eq!(received, sent, "seed {seed}: stream corrupted");
}

#[test]
fn clean_wire_delivers_in_order() {
    torture_roundtrip(
        1,
        Wire {
            loss: 0.0,
            dup: 0.0,
            jitter_us: 1,
        },
        200,
    );
}

#[test]
fn reordering_wire_is_reassembled() {
    // Heavy jitter: segments overtake each other constantly.
    torture_roundtrip(
        2,
        Wire {
            loss: 0.0,
            dup: 0.0,
            jitter_us: 20_000,
        },
        150,
    );
}

#[test]
fn duplicating_wire_delivers_exactly_once() {
    torture_roundtrip(
        3,
        Wire {
            loss: 0.0,
            dup: 0.3,
            jitter_us: 2_000,
        },
        150,
    );
}

#[test]
fn lossy_wire_retransmits_to_completion() {
    torture_roundtrip(
        4,
        Wire {
            loss: 0.1,
            dup: 0.0,
            jitter_us: 2_000,
        },
        80,
    );
}

#[test]
fn hostile_wire_all_at_once() {
    for seed in 10..16 {
        torture_roundtrip(
            seed,
            Wire {
                loss: 0.08,
                dup: 0.1,
                jitter_us: 10_000,
            },
            50,
        );
    }
}

#[test]
fn handshake_survives_loss() {
    // 30% loss: SYN/SYN-ACK retransmissions must eventually connect.
    let mut t = Torture::new(
        77,
        Wire {
            loss: 0.3,
            dup: 0.0,
            jitter_us: 1_000,
        },
    );
    let (cid, child) = t.establish();
    assert_eq!(
        t.hosts[1].sock(cid).unwrap().tcp().state,
        TcpState::Established
    );
    assert_eq!(
        t.hosts[0].sock(child).unwrap().tcp().state,
        TcpState::Established
    );
}

#[test]
fn detach_install_mid_torture_preserves_stream() {
    // The migration primitive under fire: detach the receiving socket midway
    // through a lossy transfer, reinstall it (same host — the cross-host
    // path is dvelm-migrate's job), and finish. Bytes must still arrive
    // exactly once, in order.
    let mut t = Torture::new(
        99,
        Wire {
            loss: 0.05,
            dup: 0.05,
            jitter_us: 5_000,
        },
    );
    let (cid, child) = t.establish();

    let mut sent = Vec::new();
    let mut received: Vec<u8> = Vec::new();
    let mut child = child;
    for i in 0..60 {
        let msg = format!("m{i:04}|");
        sent.extend_from_slice(msg.as_bytes());
        let fx = t.hosts[1].send(cid, Bytes::from(msg), t.now);
        t.apply(1, fx);
        let step = t.now + 3 * MILLISECOND;
        t.run_until(step);
        if i == 30 {
            // Blackout: detach, wait a little (packets die), reinstall.
            let sock = t.hosts[0].detach_socket(child).expect("detach");
            let step = t.now + 30 * MILLISECOND;
            t.run_until(step);
            let (nid, fx) = t.hosts[0].install_socket(sock, t.now);
            child = nid;
            t.apply(0, fx);
        }
        received.extend(
            t.hosts[0]
                .read_tcp(child, t.now)
                .iter()
                .flat_map(|s| s.payload.to_vec()),
        );
    }
    let mut deadline = t.now + SECOND;
    for _ in 0..600 {
        t.run_until(deadline);
        received.extend(
            t.hosts[0]
                .read_tcp(child, t.now)
                .iter()
                .flat_map(|s| s.payload.to_vec()),
        );
        if received.len() == sent.len() {
            break;
        }
        deadline += SECOND;
    }
    assert_eq!(received, sent, "stream corrupted across detach/install");
}
