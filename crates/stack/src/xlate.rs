//! Local address translation for in-cluster connection migration (§III-C,
//! §V-D).
//!
//! When process *P* migrates from host `IP1` to `IP2` while holding a
//! connection to a process on `IP3`, host `IP3` installs a translation rule:
//! outgoing packets addressed to `IP1` are rewritten to `IP2`, incoming
//! packets from `IP2` have their source rewritten to `IP1`. The peer's socket
//! never observes the move.
//!
//! Two kernel subtleties from §V-D are modelled explicitly:
//!
//! * **the IP destination-cache entry** — each outgoing packet inherits a
//!   cached route from its socket; merely rewriting the header still sends
//!   the frame to the *old* destination. A rule created with
//!   `fix_dst_cache = false` reproduces that bug: the returned route IP stays
//!   `IP1` even though the header says `IP2`, and the frame dies on the wrong
//!   host.
//! * **the TCP checksum** — rewriting addresses invalidates the transport
//!   checksum; `fix_checksum = false` leaves `Segment::checksum_ok` false and
//!   the receiving stack drops the segment.

use crate::seg::Segment;
use dvelm_net::{Ip, Port, SockAddr};

/// One translation rule, installed on the *peer's* host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XlateRule {
    /// The peer's local endpoint of the connection (`IP3:p3`).
    pub peer_local: SockAddr,
    /// The migrated socket's original host (`IP1`).
    pub old_remote_ip: Ip,
    /// The migrated socket's new host (`IP2`).
    pub new_remote_ip: Ip,
    /// The migrated socket's port (`p1`).
    pub remote_port: Port,
    /// Update the transport checksum after rewriting (§V-D fix).
    pub fix_checksum: bool,
    /// Replace the socket's destination-cache entry (§V-D fix).
    pub fix_dst_cache: bool,
}

impl XlateRule {
    /// A correctly configured rule (both §V-D fixes applied).
    pub fn new(
        peer_local: SockAddr,
        old_remote_ip: Ip,
        new_remote_ip: Ip,
        remote_port: Port,
    ) -> XlateRule {
        XlateRule {
            peer_local,
            old_remote_ip,
            new_remote_ip,
            remote_port,
            fix_checksum: true,
            fix_dst_cache: true,
        }
    }
}

/// The *destination-side* half of in-cluster migration: a migrated socket
/// keeps its original endpoint identity (`IP1:p1` — that is what the peer's
/// socket believes it talks to), so the host that now runs it rewrites its
/// own traffic: outgoing source `IP1→IP2` (the wire carries the new host's
/// address, as §III-C describes), incoming destination `IP2→IP1` before
/// socket lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelfXlateRule {
    /// The migrated socket's original local endpoint (`IP1:p1`).
    pub sock_local: SockAddr,
    /// The in-cluster peer of the connection (`IP3:p3`).
    pub peer: SockAddr,
    /// This host's local address (`IP2`).
    pub host_ip: Ip,
}

/// Counters for tests and reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XlateStats {
    pub rewritten_out: u64,
    pub rewritten_in: u64,
}

/// The per-host translation table, consulted on `LOCAL_OUT` and `LOCAL_IN`.
#[derive(Debug, Default)]
pub struct XlateTable {
    rules: Vec<XlateRule>,
    self_rules: Vec<SelfXlateRule>,
    stats: XlateStats,
}

impl XlateTable {
    /// An empty table.
    pub fn new() -> XlateTable {
        XlateTable::default()
    }

    /// Install a rule. A later rule for the same connection replaces the
    /// earlier one (re-migration of the same peer process).
    pub fn install(&mut self, rule: XlateRule) {
        self.rules.retain(|r| {
            !(r.peer_local == rule.peer_local
                && r.remote_port == rule.remote_port
                && r.old_remote_ip == rule.old_remote_ip)
        });
        self.rules.push(rule);
    }

    /// Remove every rule for the given connection; returns how many were
    /// removed.
    pub fn remove(&mut self, peer_local: SockAddr, old_remote_ip: Ip, remote_port: Port) -> usize {
        let before = self.rules.len();
        self.rules.retain(|r| {
            !(r.peer_local == peer_local
                && r.old_remote_ip == old_remote_ip
                && r.remote_port == remote_port)
        });
        before - self.rules.len()
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Install a destination-side rule for a socket this host just received
    /// via migration. Replaces any previous rule for the same socket.
    pub fn install_self(&mut self, rule: SelfXlateRule) {
        self.self_rules
            .retain(|r| r.sock_local != rule.sock_local || r.peer != rule.peer);
        self.self_rules.push(rule);
    }

    /// Remove destination-side rules for a socket that is migrating away
    /// (leaves no residual dependency on this host).
    pub fn remove_self(&mut self, sock_local: SockAddr) -> usize {
        let before = self.self_rules.len();
        self.self_rules.retain(|r| r.sock_local != sock_local);
        before - self.self_rules.len()
    }

    /// Number of destination-side rules.
    pub fn self_rule_count(&self) -> usize {
        self.self_rules.len()
    }

    /// Whether `ip` is a "virtual" local address this host answers for (the
    /// original address of a migrated socket it hosts).
    pub fn owns_virtual(&self, ip: Ip) -> bool {
        self.self_rules.iter().any(|r| r.sock_local.ip == ip)
    }

    /// Remove and return the destination-side rules for a socket that is
    /// migrating away — like [`remove_self`](Self::remove_self), but the
    /// caller keeps the rules so an aborted migration can reinstate them.
    pub fn take_self_rules_for(&mut self, sock_local: SockAddr) -> Vec<SelfXlateRule> {
        let (taken, kept): (Vec<SelfXlateRule>, Vec<SelfXlateRule>) = self
            .self_rules
            .iter()
            .partition(|r| r.sock_local == sock_local);
        self.self_rules = kept;
        taken
    }

    /// Remove and return the peer-side rules whose local endpoint is
    /// `peer_local` — used when the process owning that endpoint migrates:
    /// its view of *other* migrated peers must travel with it.
    pub fn take_rules_for(&mut self, peer_local: SockAddr) -> Vec<XlateRule> {
        let (taken, kept): (Vec<XlateRule>, Vec<XlateRule>) =
            self.rules.iter().partition(|r| r.peer_local == peer_local);
        self.rules = kept;
        taken
    }

    /// `LOCAL_OUT` hook: rewrite a locally-originated segment. A segment may
    /// match *both* a self-rule (this host runs a migrated socket: source is
    /// rewritten to this host's address) and a peer-rule (the remote endpoint
    /// has migrated too: destination is rewritten to its current host) — the
    /// both-endpoints-migrated case the paper leaves as future work.
    /// Returns the IP the frame is actually *routed* to — equal to the
    /// rewritten header destination only when the rule fixes the
    /// destination-cache entry.
    pub fn outgoing(&mut self, seg: &mut Segment) -> Ip {
        let mut route = seg.dst.ip;
        // Self half: restore the wire source to this host's address.
        // (The source is always the socket's unrewritten identity here, so
        // exact matching is safe.)
        let self_hit = self
            .self_rules
            .iter()
            .find(|r| seg.src == r.sock_local && seg.dst.port == r.peer.port)
            .copied();
        if let Some(rule) = self_hit {
            seg.rewrite_src_ip(rule.host_ip, true);
            self.stats.rewritten_out += 1;
        }
        // Peer half: send to wherever the remote endpoint lives now. The
        // source may already be rewritten, so match the peer's endpoint by
        // port.
        let peer_hit = self
            .rules
            .iter()
            .find(|r| {
                seg.src.port == r.peer_local.port
                    && seg.dst.ip == r.old_remote_ip
                    && seg.dst.port == r.remote_port
            })
            .copied();
        if let Some(rule) = peer_hit {
            seg.rewrite_dst_ip(rule.new_remote_ip, rule.fix_checksum);
            self.stats.rewritten_out += 1;
            route = if rule.fix_dst_cache {
                rule.new_remote_ip
            } else {
                // Stale destination-cache entry: the frame still goes to
                // the old host despite the rewritten header.
                rule.old_remote_ip
            };
        }
        route
    }

    /// `LOCAL_IN` hook: rewrite an arriving segment. As with
    /// [`outgoing`](Self::outgoing), the self half (destination back to the
    /// migrated socket's identity) and the peer half (source back to the
    /// remote's original identity) compose; ports anchor the matches because
    /// either address may still be in its on-wire form.
    pub fn incoming(&mut self, seg: &mut Segment) {
        let self_hit = self
            .self_rules
            .iter()
            .find(|r| {
                seg.dst.ip == r.host_ip
                    && seg.dst.port == r.sock_local.port
                    && seg.src.port == r.peer.port
            })
            .copied();
        if let Some(rule) = self_hit {
            seg.rewrite_dst_ip(rule.sock_local.ip, true);
            self.stats.rewritten_in += 1;
        }
        let peer_hit = self
            .rules
            .iter()
            .find(|r| {
                seg.dst.port == r.peer_local.port
                    && seg.src.ip == r.new_remote_ip
                    && seg.src.port == r.remote_port
            })
            .copied();
        if let Some(rule) = peer_hit {
            seg.rewrite_src_ip(rule.old_remote_ip, rule.fix_checksum);
            self.stats.rewritten_in += 1;
        }
    }

    /// Aggregate counters.
    pub fn stats(&self) -> XlateStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    const IP1: Ip = Ip::new(10, 0, 0, 1);
    const IP2: Ip = Ip::new(10, 0, 0, 2);
    const IP3: Ip = Ip::new(10, 0, 0, 3);

    fn peer_local() -> SockAddr {
        SockAddr::new(IP3, 3306)
    }

    fn rule() -> XlateRule {
        XlateRule::new(peer_local(), IP1, IP2, Port(5000))
    }

    #[test]
    fn outgoing_rewrites_and_routes_to_new_host() {
        let mut t = XlateTable::new();
        t.install(rule());
        let mut seg = Segment::udp(peer_local(), SockAddr::new(IP1, 5000), Bytes::new());
        let route = t.outgoing(&mut seg);
        assert_eq!(seg.dst.ip, IP2, "header rewritten");
        assert_eq!(route, IP2, "route follows the fixed dst-cache entry");
        assert!(seg.checksum_ok);
        assert_eq!(t.stats().rewritten_out, 1);
    }

    #[test]
    fn stale_dst_cache_misroutes() {
        let mut t = XlateTable::new();
        t.install(XlateRule {
            fix_dst_cache: false,
            ..rule()
        });
        let mut seg = Segment::udp(peer_local(), SockAddr::new(IP1, 5000), Bytes::new());
        let route = t.outgoing(&mut seg);
        assert_eq!(seg.dst.ip, IP2, "header says new host");
        assert_eq!(route, IP1, "but the frame goes to the old one");
    }

    #[test]
    fn missing_checksum_fix_flags_segment() {
        let mut t = XlateTable::new();
        t.install(XlateRule {
            fix_checksum: false,
            ..rule()
        });
        let mut seg = Segment::udp(peer_local(), SockAddr::new(IP1, 5000), Bytes::new());
        t.outgoing(&mut seg);
        assert!(!seg.checksum_ok);
    }

    #[test]
    fn incoming_rewrites_source_back() {
        let mut t = XlateTable::new();
        t.install(rule());
        let mut seg = Segment::udp(SockAddr::new(IP2, 5000), peer_local(), Bytes::new());
        t.incoming(&mut seg);
        assert_eq!(seg.src.ip, IP1, "peer sees the original address");
        assert_eq!(t.stats().rewritten_in, 1);
    }

    #[test]
    fn unrelated_traffic_untouched() {
        let mut t = XlateTable::new();
        t.install(rule());
        // Wrong port.
        let mut seg = Segment::udp(peer_local(), SockAddr::new(IP1, 9999), Bytes::new());
        let route = t.outgoing(&mut seg);
        assert_eq!(seg.dst.ip, IP1);
        assert_eq!(route, IP1);
        // Wrong local endpoint.
        let mut seg = Segment::udp(
            SockAddr::new(IP3, 1234),
            SockAddr::new(IP1, 5000),
            Bytes::new(),
        );
        t.outgoing(&mut seg);
        assert_eq!(seg.dst.ip, IP1);
    }

    #[test]
    fn reinstall_replaces_rule() {
        let mut t = XlateTable::new();
        t.install(rule());
        // The process moved again: IP1-origin connection now lives on IP3's
        // sibling 10.0.0.4.
        let ip4 = Ip::new(10, 0, 0, 4);
        t.install(XlateRule {
            new_remote_ip: ip4,
            ..rule()
        });
        assert_eq!(t.len(), 1, "rule replaced, not duplicated");
        let mut seg = Segment::udp(peer_local(), SockAddr::new(IP1, 5000), Bytes::new());
        assert_eq!(t.outgoing(&mut seg), ip4);
    }

    #[test]
    fn self_rule_rewrites_both_directions() {
        let mut t = XlateTable::new();
        // Socket originally at IP1:5000, now hosted on IP2, peer IP3:3306.
        t.install_self(SelfXlateRule {
            sock_local: SockAddr::new(IP1, 5000),
            peer: peer_local(),
            host_ip: IP2,
        });
        assert!(t.owns_virtual(IP1));
        assert!(!t.owns_virtual(IP2));

        // Outgoing from the migrated socket: src IP1 → IP2 on the wire.
        let mut seg = Segment::udp(SockAddr::new(IP1, 5000), peer_local(), Bytes::new());
        let route = t.outgoing(&mut seg);
        assert_eq!(seg.src.ip, IP2);
        assert_eq!(route, IP3, "routed to the peer");
        assert!(seg.checksum_ok);

        // Incoming from the peer (already dst-rewritten to IP2 by the peer's
        // rule): dst IP2 → IP1 before socket lookup.
        let mut seg = Segment::udp(peer_local(), SockAddr::new(IP2, 5000), Bytes::new());
        t.incoming(&mut seg);
        assert_eq!(seg.dst.ip, IP1);
    }

    #[test]
    fn remove_self_clears_residue() {
        let mut t = XlateTable::new();
        let rule = SelfXlateRule {
            sock_local: SockAddr::new(IP1, 5000),
            peer: peer_local(),
            host_ip: IP2,
        };
        t.install_self(rule);
        t.install_self(rule); // idempotent replace
        assert_eq!(t.self_rule_count(), 1);
        assert_eq!(t.remove_self(SockAddr::new(IP1, 5000)), 1);
        assert!(!t.owns_virtual(IP1));
    }

    #[test]
    fn remove_clears_connection_rules() {
        let mut t = XlateTable::new();
        t.install(rule());
        assert_eq!(t.remove(peer_local(), IP1, Port(5000)), 1);
        assert!(t.is_empty());
        assert_eq!(t.remove(peer_local(), IP1, Port(5000)), 0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use bytes::Bytes;
    use proptest::prelude::*;

    proptest! {
        /// Peer-side translation round-trips: whatever the endpoints, an
        /// outgoing rewrite followed by the peer's view and the reply's
        /// incoming rewrite restores the original addresses exactly.
        #[test]
        fn peer_translation_roundtrip(
            peer_port in 1u16..u16::MAX,
            sock_port in 1u16..u16::MAX,
            old_node in 0u32..200,
            new_node in 200u32..400,
            peer_node in 400u32..600,
        ) {
            let peer_local = SockAddr::new(Ip::local_of(dvelm_net::NodeId(peer_node)), peer_port);
            let old_ip = Ip::local_of(dvelm_net::NodeId(old_node));
            let new_ip = Ip::local_of(dvelm_net::NodeId(new_node));
            let mut t = XlateTable::new();
            t.install(XlateRule::new(peer_local, old_ip, new_ip, Port(sock_port)));

            // Peer → migrated socket.
            let mut out = Segment::udp(peer_local, SockAddr::new(old_ip, sock_port), Bytes::new());
            let route = t.outgoing(&mut out);
            prop_assert_eq!(route, new_ip);
            prop_assert_eq!(out.dst.ip, new_ip);
            prop_assert_eq!(out.dst.port, Port(sock_port));

            // Reply: migrated socket (wire src = new host) → peer.
            let mut back = Segment::udp(SockAddr::new(new_ip, sock_port), peer_local, Bytes::new());
            t.incoming(&mut back);
            prop_assert_eq!(back.src.ip, old_ip, "peer sees the original address");
            prop_assert_eq!(back.dst, peer_local);
        }
    }
}
