//! Local address translation for in-cluster connection migration (§III-C,
//! §V-D).
//!
//! When process *P* migrates from host `IP1` to `IP2` while holding a
//! connection to a process on `IP3`, host `IP3` installs a translation rule:
//! outgoing packets addressed to `IP1` are rewritten to `IP2`, incoming
//! packets from `IP2` have their source rewritten to `IP1`. The peer's socket
//! never observes the move.
//!
//! Two kernel subtleties from §V-D are modelled explicitly:
//!
//! * **the IP destination-cache entry** — each outgoing packet inherits a
//!   cached route from its socket; merely rewriting the header still sends
//!   the frame to the *old* destination. A rule created with
//!   `fix_dst_cache = false` reproduces that bug: the returned route IP stays
//!   `IP1` even though the header says `IP2`, and the frame dies on the wrong
//!   host.
//! * **the TCP checksum** — rewriting addresses invalidates the transport
//!   checksum; `fix_checksum = false` leaves `Segment::checksum_ok` false and
//!   the receiving stack drops the segment.

use crate::seg::Segment;
use dvelm_net::{Ip, Port, SockAddr};
use dvelm_sim::SimTime;

/// One translation rule, installed on the *peer's* host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XlateRule {
    /// The peer's local endpoint of the connection (`IP3:p3`).
    pub peer_local: SockAddr,
    /// The migrated socket's original host (`IP1`).
    pub old_remote_ip: Ip,
    /// The migrated socket's new host (`IP2`).
    pub new_remote_ip: Ip,
    /// The migrated socket's port (`p1`).
    pub remote_port: Port,
    /// Update the transport checksum after rewriting (§V-D fix).
    pub fix_checksum: bool,
    /// Replace the socket's destination-cache entry (§V-D fix).
    pub fix_dst_cache: bool,
}

impl XlateRule {
    /// A correctly configured rule (both §V-D fixes applied).
    pub fn new(
        peer_local: SockAddr,
        old_remote_ip: Ip,
        new_remote_ip: Ip,
        remote_port: Port,
    ) -> XlateRule {
        XlateRule {
            peer_local,
            old_remote_ip,
            new_remote_ip,
            remote_port,
            fix_checksum: true,
            fix_dst_cache: true,
        }
    }
}

/// The *destination-side* half of in-cluster migration: a migrated socket
/// keeps its original endpoint identity (`IP1:p1` — that is what the peer's
/// socket believes it talks to), so the host that now runs it rewrites its
/// own traffic: outgoing source `IP1→IP2` (the wire carries the new host's
/// address, as §III-C describes), incoming destination `IP2→IP1` before
/// socket lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelfXlateRule {
    /// The migrated socket's original local endpoint (`IP1:p1`).
    pub sock_local: SockAddr,
    /// The in-cluster peer of the connection (`IP3:p3`).
    pub peer: SockAddr,
    /// This host's local address (`IP2`).
    pub host_ip: Ip,
}

/// Counters for tests and reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct XlateStats {
    /// Outgoing segments rewritten by `LOCAL_OUT`.
    pub rewritten_out: u64,
    /// Incoming segments rewritten by `LOCAL_IN`.
    pub rewritten_in: u64,
    /// Peer rules evicted by TTL garbage collection ([`XlateTable::gc`]).
    pub gc_evicted: u64,
    /// Peer rules shed (least recently hit first) to respect `max_rules`.
    pub shed_rules: u64,
}

/// A peer rule plus the liveness bookkeeping TTL GC needs. The timestamps
/// live here, *outside* [`XlateRule`], so the rule itself stays `Copy +
/// PartialEq` (it is embedded in effects and compared by tests).
#[derive(Debug, Clone, Copy)]
struct TimedRule {
    rule: XlateRule,
    /// Last time the rule matched a packet (or its install time).
    last_hit: SimTime,
}

/// The per-host translation table, consulted on `LOCAL_OUT` and `LOCAL_IN`.
#[derive(Debug)]
pub struct XlateTable {
    rules: Vec<TimedRule>,
    self_rules: Vec<SelfXlateRule>,
    stats: XlateStats,
    /// Budget: max peer rules before least-recently-hit shedding.
    max_rules: usize,
}

impl Default for XlateTable {
    fn default() -> XlateTable {
        XlateTable {
            rules: Vec::new(),
            self_rules: Vec::new(),
            stats: XlateStats::default(),
            max_rules: usize::MAX,
        }
    }
}

impl XlateTable {
    /// An empty table.
    pub fn new() -> XlateTable {
        XlateTable::default()
    }

    /// Install a rule with the installation time recorded, so TTL GC can age
    /// the rule from `now` even if it never matches. A later rule for the
    /// same connection replaces the earlier one (re-migration of the same
    /// peer process). There is deliberately no clock-less variant: every
    /// caller must thread the sim clock (rule R2 — PR 3 shipped a default of
    /// `SimTime::ZERO` here and TTL GC evicted live rules).
    pub fn install_at(&mut self, rule: XlateRule, now: SimTime) {
        self.rules.retain(|t| {
            !(t.rule.peer_local == rule.peer_local
                && t.rule.remote_port == rule.remote_port
                && t.rule.old_remote_ip == rule.old_remote_ip)
        });
        self.rules.push(TimedRule {
            rule,
            last_hit: now,
        });
        // Budget: shed the least recently hit rule (never the newcomer).
        while self.rules.len() > self.max_rules {
            let oldest = self
                .rules
                .iter()
                .enumerate()
                .take(self.rules.len() - 1)
                .min_by_key(|(_, t)| t.last_hit)
                .map(|(i, _)| i);
            match oldest {
                Some(i) => {
                    self.rules.remove(i);
                    self.stats.shed_rules += 1;
                }
                None => break,
            }
        }
    }

    /// Cap the number of peer rules (default: unlimited). When an install
    /// exceeds the cap, the least recently hit rule is shed.
    pub fn set_max_rules(&mut self, max_rules: usize) {
        self.max_rules = max_rules;
    }

    /// TTL garbage collection, driven by the world clock: evict peer rules
    /// that have not matched a packet for longer than `ttl_us`. A closed
    /// connection stops producing hits, so its (remote, port) entry ages
    /// out instead of leaking forever; live connections refresh their rule
    /// on every packet. Self-rules are never GC'd — they define a hosted
    /// socket's identity, not a flow. Returns the evicted rules.
    pub fn gc(&mut self, now: SimTime, ttl_us: u64) -> Vec<XlateRule> {
        let (dead, live): (Vec<TimedRule>, Vec<TimedRule>) = self
            .rules
            .iter()
            .partition(|t| now.saturating_since(t.last_hit) > ttl_us);
        self.rules = live;
        self.stats.gc_evicted += dead.len() as u64;
        dead.into_iter().map(|t| t.rule).collect()
    }

    /// Remove every rule for the given connection; returns how many were
    /// removed.
    pub fn remove(&mut self, peer_local: SockAddr, old_remote_ip: Ip, remote_port: Port) -> usize {
        let before = self.rules.len();
        self.rules.retain(|t| {
            !(t.rule.peer_local == peer_local
                && t.rule.old_remote_ip == old_remote_ip
                && t.rule.remote_port == remote_port)
        });
        before - self.rules.len()
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Install a destination-side rule for a socket this host just received
    /// via migration. Replaces any previous rule for the same socket.
    pub fn install_self(&mut self, rule: SelfXlateRule) {
        self.self_rules
            .retain(|r| r.sock_local != rule.sock_local || r.peer != rule.peer);
        self.self_rules.push(rule);
    }

    /// Remove destination-side rules for a socket that is migrating away
    /// (leaves no residual dependency on this host).
    pub fn remove_self(&mut self, sock_local: SockAddr) -> usize {
        let before = self.self_rules.len();
        self.self_rules.retain(|r| r.sock_local != sock_local);
        before - self.self_rules.len()
    }

    /// Number of destination-side rules.
    pub fn self_rule_count(&self) -> usize {
        self.self_rules.len()
    }

    /// Whether `ip` is a "virtual" local address this host answers for (the
    /// original address of a migrated socket it hosts).
    pub fn owns_virtual(&self, ip: Ip) -> bool {
        self.self_rules.iter().any(|r| r.sock_local.ip == ip)
    }

    /// Remove and return the destination-side rules for a socket that is
    /// migrating away — like [`remove_self`](Self::remove_self), but the
    /// caller keeps the rules so an aborted migration can reinstate them.
    pub fn take_self_rules_for(&mut self, sock_local: SockAddr) -> Vec<SelfXlateRule> {
        let (taken, kept): (Vec<SelfXlateRule>, Vec<SelfXlateRule>) = self
            .self_rules
            .iter()
            .partition(|r| r.sock_local == sock_local);
        self.self_rules = kept;
        taken
    }

    /// Remove and return the peer-side rules whose local endpoint is
    /// `peer_local` — used when the process owning that endpoint migrates:
    /// its view of *other* migrated peers must travel with it.
    pub fn take_rules_for(&mut self, peer_local: SockAddr) -> Vec<XlateRule> {
        let (taken, kept): (Vec<TimedRule>, Vec<TimedRule>) = self
            .rules
            .iter()
            .partition(|t| t.rule.peer_local == peer_local);
        self.rules = kept;
        taken.into_iter().map(|t| t.rule).collect()
    }

    /// `LOCAL_OUT` hook: rewrite a locally-originated segment. A segment may
    /// match *both* a self-rule (this host runs a migrated socket: source is
    /// rewritten to this host's address) and a peer-rule (the remote endpoint
    /// has migrated too: destination is rewritten to its current host) — the
    /// both-endpoints-migrated case the paper leaves as future work.
    /// Returns the IP the frame is actually *routed* to — equal to the
    /// rewritten header destination only when the rule fixes the
    /// destination-cache entry. Takes the sim clock so matched peer rules
    /// refresh their TTL (outbound-only flows count as activity).
    pub fn outgoing_at(&mut self, seg: &mut Segment, now: SimTime) -> Ip {
        let mut route = seg.dst.ip;
        // Self half: restore the wire source to this host's address.
        // (The source is always the socket's unrewritten identity here, so
        // exact matching is safe.)
        let self_hit = self
            .self_rules
            .iter()
            .find(|r| seg.src == r.sock_local && seg.dst.port == r.peer.port)
            .copied();
        if let Some(rule) = self_hit {
            seg.rewrite_src_ip(rule.host_ip, true);
            self.stats.rewritten_out += 1;
        }
        // Peer half: send to wherever the remote endpoint lives now. The
        // source may already be rewritten, so match the peer's endpoint by
        // port.
        let peer_hit = self.rules.iter().position(|t| {
            seg.src.port == t.rule.peer_local.port
                && seg.dst.ip == t.rule.old_remote_ip
                && seg.dst.port == t.rule.remote_port
        });
        if let Some(i) = peer_hit {
            self.rules[i].last_hit = self.rules[i].last_hit.max(now);
            let rule = self.rules[i].rule;
            seg.rewrite_dst_ip(rule.new_remote_ip, rule.fix_checksum);
            self.stats.rewritten_out += 1;
            route = if rule.fix_dst_cache {
                rule.new_remote_ip
            } else {
                // Stale destination-cache entry: the frame still goes to
                // the old host despite the rewritten header.
                rule.old_remote_ip
            };
        }
        route
    }

    /// `LOCAL_IN` hook: rewrite an arriving segment. As with
    /// [`outgoing_at`](Self::outgoing_at), the self half (destination back to
    /// the migrated socket's identity) and the peer half (source back to the
    /// remote's original identity) compose; ports anchor the matches because
    /// either address may still be in its on-wire form. Takes the sim clock
    /// so matched peer rules refresh their TTL.
    pub fn incoming_at(&mut self, seg: &mut Segment, now: SimTime) {
        let self_hit = self
            .self_rules
            .iter()
            .find(|r| {
                seg.dst.ip == r.host_ip
                    && seg.dst.port == r.sock_local.port
                    && seg.src.port == r.peer.port
            })
            .copied();
        if let Some(rule) = self_hit {
            seg.rewrite_dst_ip(rule.sock_local.ip, true);
            self.stats.rewritten_in += 1;
        }
        let peer_hit = self.rules.iter().position(|t| {
            seg.dst.port == t.rule.peer_local.port
                && seg.src.ip == t.rule.new_remote_ip
                && seg.src.port == t.rule.remote_port
        });
        if let Some(i) = peer_hit {
            self.rules[i].last_hit = self.rules[i].last_hit.max(now);
            let rule = self.rules[i].rule;
            seg.rewrite_src_ip(rule.old_remote_ip, rule.fix_checksum);
            self.stats.rewritten_in += 1;
        }
    }

    /// Aggregate counters.
    pub fn stats(&self) -> XlateStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    const IP1: Ip = Ip::new(10, 0, 0, 1);
    const IP2: Ip = Ip::new(10, 0, 0, 2);
    const IP3: Ip = Ip::new(10, 0, 0, 3);

    fn peer_local() -> SockAddr {
        SockAddr::new(IP3, 3306)
    }

    fn rule() -> XlateRule {
        XlateRule::new(peer_local(), IP1, IP2, Port(5000))
    }

    #[test]
    fn outgoing_rewrites_and_routes_to_new_host() {
        let mut t = XlateTable::new();
        t.install_at(rule(), SimTime::ZERO);
        let mut seg = Segment::udp(peer_local(), SockAddr::new(IP1, 5000), Bytes::new());
        let route = t.outgoing_at(&mut seg, SimTime::ZERO);
        assert_eq!(seg.dst.ip, IP2, "header rewritten");
        assert_eq!(route, IP2, "route follows the fixed dst-cache entry");
        assert!(seg.checksum_ok);
        assert_eq!(t.stats().rewritten_out, 1);
    }

    #[test]
    fn stale_dst_cache_misroutes() {
        let mut t = XlateTable::new();
        t.install_at(
            XlateRule {
                fix_dst_cache: false,
                ..rule()
            },
            SimTime::ZERO,
        );
        let mut seg = Segment::udp(peer_local(), SockAddr::new(IP1, 5000), Bytes::new());
        let route = t.outgoing_at(&mut seg, SimTime::ZERO);
        assert_eq!(seg.dst.ip, IP2, "header says new host");
        assert_eq!(route, IP1, "but the frame goes to the old one");
    }

    #[test]
    fn missing_checksum_fix_flags_segment() {
        let mut t = XlateTable::new();
        t.install_at(
            XlateRule {
                fix_checksum: false,
                ..rule()
            },
            SimTime::ZERO,
        );
        let mut seg = Segment::udp(peer_local(), SockAddr::new(IP1, 5000), Bytes::new());
        t.outgoing_at(&mut seg, SimTime::ZERO);
        assert!(!seg.checksum_ok);
    }

    #[test]
    fn incoming_rewrites_source_back() {
        let mut t = XlateTable::new();
        t.install_at(rule(), SimTime::ZERO);
        let mut seg = Segment::udp(SockAddr::new(IP2, 5000), peer_local(), Bytes::new());
        t.incoming_at(&mut seg, SimTime::ZERO);
        assert_eq!(seg.src.ip, IP1, "peer sees the original address");
        assert_eq!(t.stats().rewritten_in, 1);
    }

    #[test]
    fn unrelated_traffic_untouched() {
        let mut t = XlateTable::new();
        t.install_at(rule(), SimTime::ZERO);
        // Wrong port.
        let mut seg = Segment::udp(peer_local(), SockAddr::new(IP1, 9999), Bytes::new());
        let route = t.outgoing_at(&mut seg, SimTime::ZERO);
        assert_eq!(seg.dst.ip, IP1);
        assert_eq!(route, IP1);
        // Wrong local endpoint.
        let mut seg = Segment::udp(
            SockAddr::new(IP3, 1234),
            SockAddr::new(IP1, 5000),
            Bytes::new(),
        );
        t.outgoing_at(&mut seg, SimTime::ZERO);
        assert_eq!(seg.dst.ip, IP1);
    }

    #[test]
    fn reinstall_replaces_rule() {
        let mut t = XlateTable::new();
        t.install_at(rule(), SimTime::ZERO);
        // The process moved again: IP1-origin connection now lives on IP3's
        // sibling 10.0.0.4.
        let ip4 = Ip::new(10, 0, 0, 4);
        t.install_at(
            XlateRule {
                new_remote_ip: ip4,
                ..rule()
            },
            SimTime::ZERO,
        );
        assert_eq!(t.len(), 1, "rule replaced, not duplicated");
        let mut seg = Segment::udp(peer_local(), SockAddr::new(IP1, 5000), Bytes::new());
        assert_eq!(t.outgoing_at(&mut seg, SimTime::ZERO), ip4);
    }

    #[test]
    fn self_rule_rewrites_both_directions() {
        let mut t = XlateTable::new();
        // Socket originally at IP1:5000, now hosted on IP2, peer IP3:3306.
        t.install_self(SelfXlateRule {
            sock_local: SockAddr::new(IP1, 5000),
            peer: peer_local(),
            host_ip: IP2,
        });
        assert!(t.owns_virtual(IP1));
        assert!(!t.owns_virtual(IP2));

        // Outgoing from the migrated socket: src IP1 → IP2 on the wire.
        let mut seg = Segment::udp(SockAddr::new(IP1, 5000), peer_local(), Bytes::new());
        let route = t.outgoing_at(&mut seg, SimTime::ZERO);
        assert_eq!(seg.src.ip, IP2);
        assert_eq!(route, IP3, "routed to the peer");
        assert!(seg.checksum_ok);

        // Incoming from the peer (already dst-rewritten to IP2 by the peer's
        // rule): dst IP2 → IP1 before socket lookup.
        let mut seg = Segment::udp(peer_local(), SockAddr::new(IP2, 5000), Bytes::new());
        t.incoming_at(&mut seg, SimTime::ZERO);
        assert_eq!(seg.dst.ip, IP1);
    }

    #[test]
    fn remove_self_clears_residue() {
        let mut t = XlateTable::new();
        let rule = SelfXlateRule {
            sock_local: SockAddr::new(IP1, 5000),
            peer: peer_local(),
            host_ip: IP2,
        };
        t.install_self(rule);
        t.install_self(rule); // idempotent replace
        assert_eq!(t.self_rule_count(), 1);
        assert_eq!(t.remove_self(SockAddr::new(IP1, 5000)), 1);
        assert!(!t.owns_virtual(IP1));
    }

    #[test]
    fn remove_clears_connection_rules() {
        let mut t = XlateTable::new();
        t.install_at(rule(), SimTime::ZERO);
        assert_eq!(t.remove(peer_local(), IP1, Port(5000)), 1);
        assert!(t.is_empty());
        assert_eq!(t.remove(peer_local(), IP1, Port(5000)), 0);
    }

    #[test]
    fn gc_evicts_stale_rules_only() {
        let mut t = XlateTable::new();
        t.install_at(rule(), SimTime::ZERO);
        let other = XlateRule::new(SockAddr::new(IP3, 4000), IP1, IP2, Port(5001));
        t.install_at(other, SimTime::ZERO);

        // Traffic keeps the first rule alive…
        let mut seg = Segment::udp(peer_local(), SockAddr::new(IP1, 5000), Bytes::new());
        t.outgoing_at(&mut seg, SimTime::from_secs(50));

        // …so a GC at t=60s with ttl=30s evicts only the idle one.
        let evicted = t.gc(SimTime::from_secs(60), 30_000_000);
        assert_eq!(evicted, vec![other]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.stats().gc_evicted, 1);

        // The survivor still translates.
        let mut seg = Segment::udp(peer_local(), SockAddr::new(IP1, 5000), Bytes::new());
        assert_eq!(t.outgoing_at(&mut seg, SimTime::from_secs(61)), IP2);
    }

    #[test]
    fn gc_within_ttl_keeps_everything() {
        let mut t = XlateTable::new();
        t.install_at(rule(), SimTime::from_secs(10));
        assert!(t.gc(SimTime::from_secs(30), 30_000_000).is_empty());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn gc_never_touches_self_rules() {
        let mut t = XlateTable::new();
        t.install_self(SelfXlateRule {
            sock_local: SockAddr::new(IP1, 5000),
            peer: peer_local(),
            host_ip: IP2,
        });
        t.gc(SimTime::from_secs(1000), 1);
        assert_eq!(t.self_rule_count(), 1);
        assert!(t.owns_virtual(IP1));
    }

    #[test]
    fn incoming_hits_refresh_ttl_too() {
        let mut t = XlateTable::new();
        t.install_at(rule(), SimTime::ZERO);
        let mut seg = Segment::udp(SockAddr::new(IP2, 5000), peer_local(), Bytes::new());
        t.incoming_at(&mut seg, SimTime::from_secs(50));
        assert!(t.gc(SimTime::from_secs(60), 30_000_000).is_empty());
    }

    #[test]
    fn rule_budget_sheds_least_recently_hit() {
        let mut t = XlateTable::new();
        t.set_max_rules(2);
        let a = rule();
        let b = XlateRule::new(SockAddr::new(IP3, 4000), IP1, IP2, Port(5001));
        let c = XlateRule::new(SockAddr::new(IP3, 4001), IP1, IP2, Port(5002));
        t.install_at(a, SimTime::ZERO);
        t.install_at(b, SimTime::ZERO);
        // `a` is hit at t=5s, so `b` is the least recently hit when `c`
        // arrives.
        let mut seg = Segment::udp(peer_local(), SockAddr::new(IP1, 5000), Bytes::new());
        t.outgoing_at(&mut seg, SimTime::from_secs(5));
        t.install_at(c, SimTime::from_secs(6));
        assert_eq!(t.len(), 2);
        assert_eq!(t.stats().shed_rules, 1);
        // `a` and `c` survive; `b` no longer translates.
        let mut seg = Segment::udp(
            SockAddr::new(IP3, 4000),
            SockAddr::new(IP1, 5001),
            Bytes::new(),
        );
        assert_eq!(t.outgoing_at(&mut seg, SimTime::from_secs(7)), IP1);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use bytes::Bytes;
    use proptest::prelude::*;

    proptest! {
        /// Peer-side translation round-trips: whatever the endpoints, an
        /// outgoing rewrite followed by the peer's view and the reply's
        /// incoming rewrite restores the original addresses exactly.
        #[test]
        fn peer_translation_roundtrip(
            peer_port in 1u16..u16::MAX,
            sock_port in 1u16..u16::MAX,
            old_node in 0u32..200,
            new_node in 200u32..400,
            peer_node in 400u32..600,
        ) {
            let peer_local = SockAddr::new(Ip::local_of(dvelm_net::NodeId(peer_node)), peer_port);
            let old_ip = Ip::local_of(dvelm_net::NodeId(old_node));
            let new_ip = Ip::local_of(dvelm_net::NodeId(new_node));
            let mut t = XlateTable::new();
            t.install_at(XlateRule::new(peer_local, old_ip, new_ip, Port(sock_port)), SimTime::ZERO);

            // Peer → migrated socket.
            let mut out = Segment::udp(peer_local, SockAddr::new(old_ip, sock_port), Bytes::new());
            let route = t.outgoing_at(&mut out, SimTime::ZERO);
            prop_assert_eq!(route, new_ip);
            prop_assert_eq!(out.dst.ip, new_ip);
            prop_assert_eq!(out.dst.port, Port(sock_port));

            // Reply: migrated socket (wire src = new host) → peer.
            let mut back = Segment::udp(SockAddr::new(new_ip, sock_port), peer_local, Bytes::new());
            t.incoming_at(&mut back, SimTime::ZERO);
            prop_assert_eq!(back.src.ip, old_ip, "peer sees the original address");
            prop_assert_eq!(back.dst, peer_local);
        }
    }
}
