//! A simulated Linux-2.6-like TCP/UDP network stack.
//!
//! This is the substrate the paper's socket-migration mechanism operates on
//! (§III-C, §V-B/C/D). It reproduces the kernel structures the paper
//! manipulates:
//!
//! * **ehash / bhash** lookup tables — established-connection and bind/listen
//!   hash tables; "disabling" a socket for migration means unhashing it from
//!   both and clearing its retransmission timer.
//! * the five TCP **socket-buffer queues** — write (outgoing, unacked),
//!   receive (in-order, undelivered), out-of-order, backlog (arrivals while
//!   the socket is user-locked) and prequeue (fast-path receive).
//! * **jiffies-based TCP timestamps** feeding RTT estimation and congestion
//!   control — the structures that must be shifted on the destination node.
//! * **netfilter hooks** on `LOCAL_IN` / `LOCAL_OUT`, carrying the packet
//!   capture (loss prevention) and address translation (in-cluster
//!   migration) filters.
//!
//! The stack is a deterministic state machine: all entry points take the
//! current [`SimTime`](dvelm_sim::SimTime) and return
//! [`StackEffect`]s (segments to transmit, data to deliver,
//! timers to arm) that the cluster runtime turns into events.

pub mod capture;
pub mod host;
pub mod netfilter;
pub mod seg;
pub mod skb;
pub mod socket;
pub mod tcp;
pub mod udp;
pub mod xlate;

pub use capture::{
    CaptureBudget, CaptureKey, CaptureOutcome, CaptureTable, PressureEvent, PressureKind,
    TcpShedPolicy,
};
pub use host::{HostStack, SockId, StackEffect, StackStats};
pub use netfilter::{HookPoint, Verdict};
pub use seg::{Segment, TcpFlags, Transport, IP_HEADER_LEN, TCP_HEADER_LEN, UDP_HEADER_LEN};
pub use skb::Skb;
pub use socket::Socket;
pub use tcp::{TcpSocket, TcpSocketRecord, TcpState};
pub use udp::{UdpSocket, UdpSocketRecord};
pub use xlate::{SelfXlateRule, XlateRule, XlateTable};
