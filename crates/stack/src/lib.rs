//! A simulated Linux-2.6-like TCP/UDP network stack.
//!
//! This is the substrate the paper's socket-migration mechanism operates on
//! (§III-C, §V-B/C/D). It reproduces the kernel structures the paper
//! manipulates:
//!
//! * **ehash / bhash** lookup tables — established-connection and bind/listen
//!   hash tables; "disabling" a socket for migration means unhashing it from
//!   both and clearing its retransmission timer.
//! * the five TCP **socket-buffer queues** — write (outgoing, unacked),
//!   receive (in-order, undelivered), out-of-order, backlog (arrivals while
//!   the socket is user-locked) and prequeue (fast-path receive).
//! * **jiffies-based TCP timestamps** feeding RTT estimation and congestion
//!   control — the structures that must be shifted on the destination node.
//! * **netfilter hooks** on `LOCAL_IN` / `LOCAL_OUT`, carrying the packet
//!   capture (loss prevention) and address translation (in-cluster
//!   migration) filters.
//!
//! The stack is a deterministic state machine: all entry points take the
//! current [`SimTime`](dvelm_sim::SimTime) and return
//! [`StackEffect`]s (segments to transmit, data to deliver,
//! timers to arm) that the cluster runtime turns into events.

/// Incoming-packet capture for loss prevention during migration (§V-B).
pub mod capture;
/// The per-node stack: socket table, ehash/bhash, timers, migration ops.
pub mod host;
/// Netfilter-style hook points traversed by the rx/tx paths.
pub mod netfilter;
/// Wire segments (the simulated packets).
pub mod seg;
/// Socket buffers with byte accounting.
pub mod skb;
/// The tagged socket union (TCP or UDP).
pub mod socket;
/// The TCP state machine and its checkpointable record.
pub mod tcp;
/// UDP sockets and their checkpointable record.
pub mod udp;
/// Address translation for in-cluster connection migration (§V-D).
pub mod xlate;

pub use capture::{
    CaptureBudget, CaptureKey, CaptureOutcome, CaptureTable, PressureEvent, PressureKind,
    TcpShedPolicy,
};
pub use host::{HostStack, SockId, StackEffect, StackStats};
pub use netfilter::{HookPoint, Verdict};
pub use seg::{Segment, TcpFlags, Transport, IP_HEADER_LEN, TCP_HEADER_LEN, UDP_HEADER_LEN};
pub use skb::Skb;
pub use socket::Socket;
pub use tcp::{TcpSocket, TcpSocketRecord, TcpState};
pub use udp::{UdpSocket, UdpSocketRecord};
pub use xlate::{SelfXlateRule, XlateRule, XlateTable};
