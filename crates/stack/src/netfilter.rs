//! Netfilter-style hook points (§V-B, §V-D).
//!
//! The kernel prototype attaches its packet-capturing and address-translation
//! functions to `NF_INET_LOCAL_IN` and `NF_INET_LOCAL_OUT`. We model the same
//! interposition points: the host stack traverses the registered hook kinds
//! in order on every locally-delivered / locally-originated segment, applying
//! the corresponding filter table. The registry exists so tests and ablations
//! can disable or reorder hooks — e.g. running a migration with the capture
//! hook removed reproduces the incoming-packet-loss problem the paper cites.

/// Where a hook is attached.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HookPoint {
    /// Packets delivered to this host (`NF_INET_LOCAL_IN`).
    LocalIn,
    /// Packets originated by this host (`NF_INET_LOCAL_OUT`).
    LocalOut,
}

/// The built-in hook functions of the migration system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HookKind {
    /// Address translation for migrated in-cluster connections (§V-D).
    Translate,
    /// Packet capture for incoming-packet-loss prevention (§V-B).
    Capture,
}

/// Result of running a segment through one hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Continue down the chain / deliver.
    Accept,
    /// The hook consumed the segment (e.g. queued it for reinjection).
    Stolen,
}

/// Per-hook-point ordered registry.
#[derive(Debug, Clone)]
pub struct HookRegistry {
    local_in: Vec<HookKind>,
    local_out: Vec<HookKind>,
}

impl Default for HookRegistry {
    /// The prototype's configuration: translation runs before capture on the
    /// input path (a translated segment must be matchable by its rewritten
    /// addresses), translation only on the output path.
    fn default() -> Self {
        HookRegistry {
            local_in: vec![HookKind::Translate, HookKind::Capture],
            local_out: vec![HookKind::Translate],
        }
    }
}

/// Upper bound on chain length: [`HookRegistry::register`] keeps each
/// [`HookKind`] at most once and only two kinds exist.
pub const MAX_CHAIN_LEN: usize = 2;

impl HookRegistry {
    /// Hooks registered at `point`, in traversal order.
    pub fn chain(&self, point: HookPoint) -> &[HookKind] {
        match point {
            HookPoint::LocalIn => &self.local_in,
            HookPoint::LocalOut => &self.local_out,
        }
    }

    /// An owned inline copy of the chain at `point` (valid prefix length in
    /// `.1`): the RX hot path traverses hooks while mutating the tables they
    /// drive, and the copy makes that borrow-safe without the per-packet
    /// heap allocation a `to_vec` would cost.
    pub fn chain_copy(&self, point: HookPoint) -> ([HookKind; MAX_CHAIN_LEN], usize) {
        let chain = self.chain(point);
        debug_assert!(chain.len() <= MAX_CHAIN_LEN);
        let mut copy = [HookKind::Translate; MAX_CHAIN_LEN];
        let len = chain.len().min(MAX_CHAIN_LEN);
        copy[..len].copy_from_slice(&chain[..len]);
        (copy, len)
    }

    /// Remove a hook from a chain (ablation support). Returns whether it was
    /// present.
    pub fn unregister(&mut self, point: HookPoint, kind: HookKind) -> bool {
        let chain = match point {
            HookPoint::LocalIn => &mut self.local_in,
            HookPoint::LocalOut => &mut self.local_out,
        };
        let before = chain.len();
        chain.retain(|k| *k != kind);
        chain.len() != before
    }

    /// Append a hook to a chain if absent.
    pub fn register(&mut self, point: HookPoint, kind: HookKind) {
        let chain = match point {
            HookPoint::LocalIn => &mut self.local_in,
            HookPoint::LocalOut => &mut self.local_out,
        };
        if !chain.contains(&kind) {
            chain.push(kind);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_chains_match_prototype() {
        let r = HookRegistry::default();
        assert_eq!(
            r.chain(HookPoint::LocalIn),
            &[HookKind::Translate, HookKind::Capture]
        );
        assert_eq!(r.chain(HookPoint::LocalOut), &[HookKind::Translate]);
    }

    #[test]
    fn unregister_removes_only_that_kind() {
        let mut r = HookRegistry::default();
        assert!(r.unregister(HookPoint::LocalIn, HookKind::Capture));
        assert_eq!(r.chain(HookPoint::LocalIn), &[HookKind::Translate]);
        assert!(
            !r.unregister(HookPoint::LocalIn, HookKind::Capture),
            "already gone"
        );
    }

    #[test]
    fn register_is_idempotent() {
        let mut r = HookRegistry::default();
        r.register(HookPoint::LocalIn, HookKind::Capture);
        assert_eq!(r.chain(HookPoint::LocalIn).len(), 2);
        r.unregister(HookPoint::LocalIn, HookKind::Capture);
        r.register(HookPoint::LocalIn, HookKind::Capture);
        assert_eq!(
            r.chain(HookPoint::LocalIn),
            &[HookKind::Translate, HookKind::Capture]
        );
    }
}
