//! The per-node host stack: socket table, ehash/bhash lookup, netfilter
//! traversal, timers and the migration detach/install operations.
//!
//! This is the "kernel" of a simulated node. All entry points are
//! deterministic state-machine steps that return [`StackEffect`]s for the
//! cluster runtime to schedule.

use crate::capture::CaptureTable;
use crate::netfilter::{HookKind, HookPoint, HookRegistry};
use crate::seg::{Segment, Transport};
use crate::skb::Skb;
use crate::socket::Socket;
use crate::tcp::{TcpCtx, TcpOut, TcpSocket};
use crate::udp::{Datagram, UdpSocket};
use crate::xlate::XlateTable;
use bytes::Bytes;
use dvelm_net::{Ip, NodeId, Port, SockAddr};
use dvelm_sim::{DetRng, Jiffies, SimTime};
use std::collections::BTreeMap;

/// A host-local socket identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SockId(pub u64);

/// Established-connection hash key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct FourTuple {
    local: SockAddr,
    remote: SockAddr,
}

/// Effects a stack entry point hands back to the runtime.
#[derive(Debug)]
pub enum StackEffect {
    /// Transmit `seg`; physically deliver it to the host owning `route`
    /// (normally `seg.dst.ip`, different under a stale destination cache).
    Tx { seg: Segment, route: Ip },
    /// The socket's receive queue became non-empty.
    DataReadable { sock: SockId },
    /// An active open completed.
    Established { sock: SockId },
    /// A listener accepted a new connection.
    NewConnection { listener: SockId, child: SockId },
    /// The peer closed its direction.
    PeerFin { sock: SockId },
    /// The connection fully closed.
    SockClosed { sock: SockId },
    /// Arm the retransmission timer; deliver `on_timer(sock, gen)` at `at`.
    ArmTimer { sock: SockId, gen: u64, at: SimTime },
}

/// Aggregate stack counters (per host).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StackStats {
    /// Frames that reached this host's rx path.
    pub rx_total: u64,
    /// Frames stolen by the capture hook (migration in progress).
    pub rx_captured: u64,
    /// Frames dropped because no socket matched.
    pub rx_dropped_no_socket: u64,
    /// Frames dropped for an inconsistent transport checksum (§V-D).
    pub rx_dropped_bad_checksum: u64,
    /// Frames routed to this host whose header says another (stale
    /// destination-cache ablation, §V-D).
    pub rx_dropped_misrouted: u64,
    /// Packets the capture hook refused under budget pressure (treated as
    /// wire loss; TCP retransmission or UDP best-effort recovers).
    pub rx_capture_shed: u64,
    /// Captured packets re-submitted to the stack after restore.
    pub reinjected: u64,
    /// Segments transmitted by this host.
    pub tx_total: u64,
}

/// The simulated kernel network stack of one host.
#[derive(Debug)]
pub struct HostStack {
    /// The host this stack belongs to.
    pub node: NodeId,
    /// Address of the public (shared, broadcast) interface.
    pub public_ip: Ip,
    /// Address of the local (in-cluster) interface.
    pub local_ip: Ip,
    /// This node's jiffies boot offset (differs per node, §V-C1).
    pub jiffies_base: u64,
    /// Netfilter hook configuration.
    pub netfilter: HookRegistry,
    /// Packet-capture table (loss prevention, §V-B).
    pub capture: CaptureTable,
    /// Address-translation table (in-cluster migration, §V-D).
    pub xlate: XlateTable,

    socks: BTreeMap<SockId, Socket>,
    ehash: BTreeMap<FourTuple, SockId>,
    bhash: BTreeMap<(Ip, Port), SockId>,
    /// Children accepted by a listener but not yet established.
    pending_children: BTreeMap<SockId, SockId>,
    next_sock: u64,
    next_ephemeral: u16,
    stamp: u64,
    iss_rng: DetRng,
    stats: StackStats,
    /// Fault injection: the next this many
    /// [`try_install_socket`](Self::try_install_socket) calls fail.
    install_failures_armed: u32,
}

impl HostStack {
    /// A stack for `node` with the given interfaces and jiffies base.
    pub fn new(node: NodeId, public_ip: Ip, local_ip: Ip, jiffies_base: u64, seed: u64) -> Self {
        HostStack {
            node,
            public_ip,
            local_ip,
            jiffies_base,
            netfilter: HookRegistry::default(),
            capture: CaptureTable::new(),
            xlate: XlateTable::new(),
            socks: BTreeMap::new(),
            ehash: BTreeMap::new(),
            bhash: BTreeMap::new(),
            pending_children: BTreeMap::new(),
            next_sock: 1,
            next_ephemeral: 32_768,
            stamp: 0,
            iss_rng: DetRng::new(seed ^ 0x5049_4c43_4f54_5350),
            stats: StackStats::default(),
            install_failures_armed: 0,
        }
    }

    /// A cluster server node: shared public IP + unique local IP.
    pub fn server_node(node: NodeId, jiffies_base: u64, seed: u64) -> Self {
        HostStack::new(
            node,
            Ip::CLUSTER_PUBLIC,
            Ip::local_of(node),
            jiffies_base,
            seed,
        )
    }

    /// A client host on the WAN side (single interface).
    pub fn client_host(node: NodeId, jiffies_base: u64, seed: u64) -> Self {
        let ip = Ip::client_of(node);
        HostStack::new(node, ip, ip, jiffies_base, seed)
    }

    /// This node's jiffies at `now`.
    pub fn jiffies(&self, now: SimTime) -> Jiffies {
        Jiffies::at(self.jiffies_base, now)
    }

    /// Aggregate counters.
    pub fn stats(&self) -> StackStats {
        self.stats
    }

    /// Number of sockets on this host.
    pub fn socket_count(&self) -> usize {
        self.socks.len()
    }

    /// All socket ids (sorted, deterministic).
    pub fn socket_ids(&self) -> Vec<SockId> {
        let mut ids: Vec<SockId> = self.socks.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Shared access to a socket.
    pub fn sock(&self, sid: SockId) -> Option<&Socket> {
        self.socks.get(&sid)
    }

    /// Mutable access to a socket (tests and the migration engine).
    pub fn sock_mut(&mut self, sid: SockId) -> Option<&mut Socket> {
        self.socks.get_mut(&sid)
    }

    /// Whether a (ip, port) pair is bound on this host.
    pub fn is_bound(&self, ip: Ip, port: Port) -> bool {
        self.bhash.contains_key(&(ip, port))
    }

    /// A `netstat`-style dump of every socket on this host, one line each,
    /// sorted by socket id — for debugging and operator-facing examples.
    pub fn netstat(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<6}{:<6}{:<24}{:<24}{:<14}{}\n",
            "sock", "proto", "local", "remote", "state", "queues(w/r/o/b/p)"
        ));
        for (&sid, sock) in &self.socks {
            let (proto, remote, state, queues) = match sock {
                Socket::Tcp(t) => {
                    let q = t.queue_lens();
                    (
                        "tcp",
                        t.remote
                            .map(|r| r.to_string())
                            .unwrap_or_else(|| "*".into()),
                        format!("{:?}", t.state),
                        format!("{}/{}/{}/{}/{}", q.0, q.1, q.2, q.3, q.4),
                    )
                }
                Socket::Udp(u) => (
                    "udp",
                    u.remote
                        .map(|r| r.to_string())
                        .unwrap_or_else(|| "*".into()),
                    "-".to_string(),
                    format!("-/{}/-/-/-", u.queued()),
                ),
            };
            out.push_str(&format!(
                "{:<6}{:<6}{:<24}{:<24}{:<14}{}\n",
                sid.0,
                proto,
                sock.local().to_string(),
                remote,
                state,
                queues
            ));
        }
        out
    }

    /// Whether the established table has an entry for this 4-tuple.
    pub fn has_established(&self, local: SockAddr, remote: SockAddr) -> bool {
        self.ehash.contains_key(&FourTuple { local, remote })
    }

    fn alloc_sid(&mut self) -> SockId {
        let sid = SockId(self.next_sock);
        self.next_sock += 1;
        sid
    }

    fn ephemeral_port(&mut self) -> Port {
        loop {
            let p = Port(self.next_ephemeral);
            self.next_ephemeral = self.next_ephemeral.checked_add(1).unwrap_or(32_768);
            if !self.bhash.contains_key(&(self.public_ip, p))
                && !self.bhash.contains_key(&(self.local_ip, p))
            {
                return p;
            }
        }
    }

    // ------------------------------------------------------------------
    // socket creation
    // ------------------------------------------------------------------

    /// Create a TCP listening socket bound to `addr`.
    pub fn tcp_listen(&mut self, addr: SockAddr) -> Result<SockId, BindError> {
        if self.bhash.contains_key(&(addr.ip, addr.port)) {
            return Err(BindError::AddrInUse(addr));
        }
        let sid = self.alloc_sid();
        self.socks.insert(sid, Socket::Tcp(TcpSocket::listen(addr)));
        self.bhash.insert((addr.ip, addr.port), sid);
        Ok(sid)
    }

    /// Active-open a TCP connection from an explicit local endpoint.
    pub fn tcp_connect(
        &mut self,
        local: SockAddr,
        remote: SockAddr,
        now: SimTime,
    ) -> (SockId, Vec<StackEffect>) {
        let iss = self.iss_rng.next_u64() as u32;
        let jiffies = self.jiffies(now);
        let mut ctx = TcpCtx {
            now,
            jiffies,
            stamp: &mut self.stamp,
        };
        let (sock, outs) = TcpSocket::connect(local, remote, iss, &mut ctx);
        let sid = self.alloc_sid();
        let gen = sock.timer_gen;
        self.ehash.insert(FourTuple { local, remote }, sid);
        self.socks.insert(sid, Socket::Tcp(sock));
        let fx = self.map_tcp_outs(sid, gen, outs, now);
        (sid, fx)
    }

    /// Active-open from this host's local interface with an ephemeral port
    /// (in-cluster connections, e.g. zone server → database).
    pub fn tcp_connect_local(
        &mut self,
        remote: SockAddr,
        now: SimTime,
    ) -> (SockId, Vec<StackEffect>) {
        let port = self.ephemeral_port();
        let local = SockAddr {
            ip: self.local_ip,
            port,
        };
        self.tcp_connect(local, remote, now)
    }

    /// Active-open from this host's public interface with an ephemeral port
    /// (clients connecting to the cluster).
    pub fn tcp_connect_public(
        &mut self,
        remote: SockAddr,
        now: SimTime,
    ) -> (SockId, Vec<StackEffect>) {
        let port = self.ephemeral_port();
        let local = SockAddr {
            ip: self.public_ip,
            port,
        };
        self.tcp_connect(local, remote, now)
    }

    /// Bind a UDP socket.
    pub fn udp_bind(&mut self, addr: SockAddr) -> Result<SockId, BindError> {
        if self.bhash.contains_key(&(addr.ip, addr.port)) {
            return Err(BindError::AddrInUse(addr));
        }
        let sid = self.alloc_sid();
        self.socks.insert(sid, Socket::Udp(UdpSocket::bind(addr)));
        self.bhash.insert((addr.ip, addr.port), sid);
        Ok(sid)
    }

    /// Bind a UDP socket on the public interface with an ephemeral port.
    pub fn udp_bind_ephemeral(&mut self) -> SockId {
        loop {
            let port = self.ephemeral_port();
            let addr = SockAddr {
                ip: self.public_ip,
                port,
            };
            if let Ok(sid) = self.udp_bind(addr) {
                return sid;
            }
        }
    }

    /// Set the default peer of a UDP socket.
    pub fn udp_connect(&mut self, sid: SockId, remote: SockAddr) {
        if let Some(sock) = self.socks.get_mut(&sid) {
            sock.udp_mut().connect(remote);
        }
    }

    // ------------------------------------------------------------------
    // data plane
    // ------------------------------------------------------------------

    /// Send on a connected socket (TCP stream data or UDP to the default
    /// peer).
    pub fn send(&mut self, sid: SockId, data: Bytes, now: SimTime) -> Vec<StackEffect> {
        match self.socks.get_mut(&sid) {
            Some(Socket::Tcp(_)) => match self.with_tcp(sid, now, |t, ctx| t.send(data, ctx)) {
                Some((outs, gen)) => self.map_tcp_outs(sid, gen, outs, now),
                None => Vec::new(),
            },
            Some(Socket::Udp(u)) => match u.send(data) {
                Some(seg) => vec![self.route_out(seg, now)],
                None => Vec::new(),
            },
            None => Vec::new(),
        }
    }

    /// Send a UDP datagram to an explicit destination.
    pub fn udp_send_to(
        &mut self,
        sid: SockId,
        dst: SockAddr,
        data: Bytes,
        now: SimTime,
    ) -> Vec<StackEffect> {
        let Some(sock) = self.socks.get(&sid) else {
            return Vec::new();
        };
        let seg = sock.udp().send_to(dst, data);
        vec![self.route_out(seg, now)]
    }

    /// Read buffered TCP stream data.
    pub fn read_tcp(&mut self, sid: SockId, now: SimTime) -> Vec<Skb> {
        self.with_tcp(sid, now, |t, ctx| t.read(ctx))
            .map(|(skbs, _)| skbs)
            .unwrap_or_default()
    }

    /// Read buffered UDP datagrams.
    pub fn read_udp(&mut self, sid: SockId) -> Vec<Datagram> {
        match self.socks.get_mut(&sid) {
            Some(Socket::Udp(u)) => u.read(&mut self.stamp),
            _ => Vec::new(),
        }
    }

    /// Close a TCP connection (graceful FIN) or release a UDP socket.
    pub fn close(&mut self, sid: SockId, now: SimTime) -> Vec<StackEffect> {
        match self.socks.get(&sid) {
            Some(Socket::Tcp(_)) => match self.with_tcp(sid, now, |t, ctx| t.close(ctx)) {
                Some((outs, gen)) => self.map_tcp_outs(sid, gen, outs, now),
                None => Vec::new(),
            },
            Some(Socket::Udp(_)) => {
                self.release(sid);
                vec![StackEffect::SockClosed { sock: sid }]
            }
            None => Vec::new(),
        }
    }

    /// Remove a socket and all its table entries (final cleanup).
    pub fn release(&mut self, sid: SockId) -> Option<Socket> {
        let sock = self.socks.remove(&sid)?;
        self.unhash(&sock, sid);
        self.pending_children.remove(&sid);
        Some(sock)
    }

    fn unhash(&mut self, sock: &Socket, sid: SockId) {
        match sock {
            Socket::Tcp(t) => {
                if let Some(remote) = t.remote {
                    self.ehash.remove(&FourTuple {
                        local: t.local,
                        remote,
                    });
                } else {
                    self.bhash.remove(&(t.local.ip, t.local.port));
                }
            }
            Socket::Udp(u) => {
                self.bhash.remove(&(u.local.ip, u.local.port));
            }
        }
        let _ = sid;
    }

    /// Mark the socket user-locked (application inside a handler holding the
    /// socket lock): arriving segments divert to the backlog.
    pub fn set_user_locked(&mut self, sid: SockId, locked: bool, now: SimTime) -> Vec<StackEffect> {
        let Some(Socket::Tcp(t)) = self.socks.get_mut(&sid) else {
            return Vec::new();
        };
        t.user_locked = locked;
        if locked {
            return Vec::new();
        }
        match self.with_tcp(sid, now, |t, ctx| t.process_parked(ctx)) {
            Some((outs, gen)) => self.map_tcp_outs(sid, gen, outs, now),
            None => Vec::new(),
        }
    }

    /// Toggle the fast-path reader flag (blocked-in-recv emulation).
    pub fn set_fast_path(&mut self, sid: SockId, active: bool, now: SimTime) -> Vec<StackEffect> {
        let Some(Socket::Tcp(t)) = self.socks.get_mut(&sid) else {
            return Vec::new();
        };
        t.fast_path_reader = active;
        if active {
            return Vec::new();
        }
        match self.with_tcp(sid, now, |t, ctx| t.process_parked(ctx)) {
            Some((outs, gen)) => self.map_tcp_outs(sid, gen, outs, now),
            None => Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // receive path
    // ------------------------------------------------------------------

    /// A frame arrived on either interface: run the `LOCAL_IN` netfilter
    /// chain, then deliver to a socket.
    pub fn on_rx(&mut self, mut seg: Segment, now: SimTime) -> Vec<StackEffect> {
        self.stats.rx_total += 1;
        let (hooks, n_hooks) = self.netfilter.chain_copy(HookPoint::LocalIn);
        for kind in hooks.into_iter().take(n_hooks) {
            match kind {
                HookKind::Translate => self.xlate.incoming_at(&mut seg, now),
                HookKind::Capture => match self.capture.capture(&seg) {
                    crate::capture::CaptureOutcome::NotMatched => {}
                    crate::capture::CaptureOutcome::Captured
                    | crate::capture::CaptureOutcome::Duplicate
                    | crate::capture::CaptureOutcome::CapturedShedOldest => {
                        self.stats.rx_captured += 1;
                        return Vec::new();
                    }
                    crate::capture::CaptureOutcome::RefusedRecoverable
                    | crate::capture::CaptureOutcome::HardFailRefused => {
                        // Budget refusal: the hook drops the packet as wire
                        // loss. Pressure events record the incident; a
                        // hard-fail one obliges the runtime to abort the
                        // migration owning this capture.
                        self.stats.rx_capture_shed += 1;
                        return Vec::new();
                    }
                },
            }
        }
        if !seg.checksum_ok {
            self.stats.rx_dropped_bad_checksum += 1;
            return Vec::new();
        }
        self.deliver(seg, now)
    }

    /// Re-submit a previously captured segment to the stack, bypassing the
    /// `LOCAL_IN` hooks — the `okfn()` path of §V-B.
    pub fn reinject(&mut self, seg: Segment, now: SimTime) -> Vec<StackEffect> {
        self.stats.reinjected += 1;
        self.deliver(seg, now)
    }

    fn deliver(&mut self, seg: Segment, now: SimTime) -> Vec<StackEffect> {
        if seg.dst.ip != self.public_ip
            && seg.dst.ip != self.local_ip
            && !self.xlate.owns_virtual(seg.dst.ip)
        {
            // Header addressed elsewhere (e.g. stale destination cache sent
            // it here): not ours.
            self.stats.rx_dropped_misrouted += 1;
            return Vec::new();
        }
        match &seg.transport {
            Transport::Tcp { flags, .. } => {
                let ft = FourTuple {
                    local: seg.dst,
                    remote: seg.src,
                };
                if let Some(&sid) = self.ehash.get(&ft) {
                    return match self.with_tcp(sid, now, |t, ctx| t.on_segment(seg, ctx)) {
                        Some((outs, gen)) => self.map_tcp_outs(sid, gen, outs, now),
                        None => Vec::new(),
                    };
                }
                if flags.syn && !flags.ack {
                    if let Some(&lid) = self.bhash.get(&(seg.dst.ip, seg.dst.port)) {
                        if self.socks.get(&lid).is_some_and(Socket::is_listener) {
                            return self.accept_syn(lid, seg, now);
                        }
                    }
                }
                // Broadcast configuration: nodes that do not own the port
                // silently ignore the copy — no RST.
                self.stats.rx_dropped_no_socket += 1;
                Vec::new()
            }
            Transport::Udp { .. } => {
                if let Some(&sid) = self.bhash.get(&(seg.dst.ip, seg.dst.port)) {
                    if let Some(Socket::Udp(u)) = self.socks.get_mut(&sid) {
                        let jiffies = Jiffies::at(self.jiffies_base, now);
                        let notify = u.on_datagram(seg, now, jiffies, &mut self.stamp);
                        return if notify {
                            vec![StackEffect::DataReadable { sock: sid }]
                        } else {
                            Vec::new()
                        };
                    }
                }
                self.stats.rx_dropped_no_socket += 1;
                Vec::new()
            }
        }
    }

    fn accept_syn(&mut self, lid: SockId, seg: Segment, now: SimTime) -> Vec<StackEffect> {
        let Transport::Tcp { seq, ts_val, .. } = seg.transport else {
            debug_assert!(false, "accept_syn called with non-TCP segment");
            return Vec::new();
        };
        let iss = self.iss_rng.next_u64() as u32;
        let jiffies = self.jiffies(now);
        let mut ctx = TcpCtx {
            now,
            jiffies,
            stamp: &mut self.stamp,
        };
        let (child, outs) = TcpSocket::passive_open(seg.dst, seg.src, seq, ts_val, iss, &mut ctx);
        let gen = child.timer_gen;
        let sid = self.alloc_sid();
        self.ehash.insert(
            FourTuple {
                local: seg.dst,
                remote: seg.src,
            },
            sid,
        );
        self.socks.insert(sid, Socket::Tcp(child));
        self.pending_children.insert(sid, lid);
        self.map_tcp_outs(sid, gen, outs, now)
    }

    // ------------------------------------------------------------------
    // timers
    // ------------------------------------------------------------------

    /// A previously armed retransmission timer fired. Stale fires (released
    /// socket, bumped generation, rescheduled deadline) are ignored — lazy
    /// cancellation.
    pub fn on_timer(&mut self, sid: SockId, gen: u64, now: SimTime) -> Vec<StackEffect> {
        let Some(Socket::Tcp(t)) = self.socks.get(&sid) else {
            return Vec::new();
        };
        if t.timer_gen != gen {
            return Vec::new();
        }
        match t.timer_deadline() {
            Some(d) if d <= now => {}
            _ => return Vec::new(),
        }
        match self.with_tcp(sid, now, |t, ctx| t.on_rto(ctx)) {
            Some((outs, gen)) => self.map_tcp_outs(sid, gen, outs, now),
            None => Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // migration support
    // ------------------------------------------------------------------

    /// "Disable" a socket for migration: unhash from ehash/bhash, clear its
    /// retransmission timer and take it out of the socket table (§V-C1).
    pub fn detach_socket(&mut self, sid: SockId) -> Option<Socket> {
        let mut sock = self.socks.remove(&sid)?;
        self.unhash(&sock, sid);
        if let Socket::Tcp(t) = &mut sock {
            t.quiesce_for_migration();
        }
        self.pending_children.remove(&sid);
        Some(sock)
    }

    /// Install a (migrated) socket: insert into the socket table, rehash into
    /// ehash/bhash and restart the retransmission timer (§V-C1).
    pub fn install_socket(&mut self, sock: Socket, now: SimTime) -> (SockId, Vec<StackEffect>) {
        let sid = self.alloc_sid();
        match &sock {
            Socket::Tcp(t) => {
                if let Some(remote) = t.remote {
                    self.ehash.insert(
                        FourTuple {
                            local: t.local,
                            remote,
                        },
                        sid,
                    );
                } else {
                    self.bhash.insert((t.local.ip, t.local.port), sid);
                }
            }
            Socket::Udp(u) => {
                self.bhash.insert((u.local.ip, u.local.port), sid);
            }
        }
        self.socks.insert(sid, sock);
        let restart = self.with_tcp(sid, now, |t, ctx| t.restart_timer_after_restore(ctx));
        let fx = match restart {
            Some((outs, gen)) => self.map_tcp_outs(sid, gen, outs, now),
            None => Vec::new(),
        };
        (sid, fx)
    }

    /// Fallible [`install_socket`](Self::install_socket): while armed
    /// failures remain the socket is handed back untouched (nothing was
    /// hashed, no timer armed). The infallible `install_socket` ignores
    /// arming, so existing callers are unaffected.
    #[allow(clippy::result_large_err)] // the Err *is* the unconsumed socket
    pub fn try_install_socket(
        &mut self,
        sock: Socket,
        now: SimTime,
    ) -> Result<(SockId, Vec<StackEffect>), Socket> {
        if self.install_failures_armed > 0 {
            self.install_failures_armed -= 1;
            return Err(sock);
        }
        Ok(self.install_socket(sock, now))
    }

    /// Fault injection: make the next `n`
    /// [`try_install_socket`](Self::try_install_socket) calls fail.
    pub fn arm_install_failures(&mut self, n: u32) {
        self.install_failures_armed = n;
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    /// Run `f` on a TCP socket with a fresh context; returns the result and
    /// the socket's post-call timer generation.
    fn with_tcp<R>(
        &mut self,
        sid: SockId,
        now: SimTime,
        f: impl FnOnce(&mut TcpSocket, &mut TcpCtx<'_>) -> R,
    ) -> Option<(R, u64)> {
        let jiffies = Jiffies::at(self.jiffies_base, now);
        let Some(Socket::Tcp(t)) = self.socks.get_mut(&sid) else {
            return None;
        };
        let mut ctx = TcpCtx {
            now,
            jiffies,
            stamp: &mut self.stamp,
        };
        let r = f(t, &mut ctx);
        let gen = t.timer_gen;
        Some((r, gen))
    }

    /// Run the `LOCAL_OUT` chain and produce the transmit effect. The clock
    /// is threaded through so a matched translation rule refreshes its
    /// `last_hit` — outbound-only flows must keep their rule alive under
    /// TTL GC just like inbound ones.
    fn route_out(&mut self, mut seg: Segment, now: SimTime) -> StackEffect {
        let mut route = seg.dst.ip;
        let (hooks, n_hooks) = self.netfilter.chain_copy(HookPoint::LocalOut);
        for kind in hooks.into_iter().take(n_hooks) {
            if kind == HookKind::Translate {
                route = self.xlate.outgoing_at(&mut seg, now);
            }
        }
        self.stats.tx_total += 1;
        StackEffect::Tx { seg, route }
    }

    fn map_tcp_outs(
        &mut self,
        sid: SockId,
        gen: u64,
        outs: Vec<TcpOut>,
        now: SimTime,
    ) -> Vec<StackEffect> {
        let mut fx = Vec::with_capacity(outs.len());
        for out in outs {
            match out {
                TcpOut::Tx(seg) => fx.push(self.route_out(seg, now)),
                TcpOut::DataReadable => fx.push(StackEffect::DataReadable { sock: sid }),
                TcpOut::Established => {
                    if let Some(listener) = self.pending_children.remove(&sid) {
                        fx.push(StackEffect::NewConnection {
                            listener,
                            child: sid,
                        });
                    } else {
                        fx.push(StackEffect::Established { sock: sid });
                    }
                }
                TcpOut::PeerFin => fx.push(StackEffect::PeerFin { sock: sid }),
                TcpOut::ArmTimer(at) => fx.push(StackEffect::ArmTimer { sock: sid, gen, at }),
                TcpOut::StopTimer => {} // lazy cancellation
                TcpOut::Closed => {
                    // Unhash so the 4-tuple becomes reusable; the struct
                    // stays readable until release().
                    if let Some(sock) = self.socks.get(&sid) {
                        let sock = sock.clone();
                        self.unhash(&sock, sid);
                    }
                    fx.push(StackEffect::SockClosed { sock: sid });
                }
                TcpOut::SpawnChild(_) => {
                    debug_assert!(
                        false,
                        "passive opens are performed by the host, not the socket"
                    );
                }
            }
        }
        fx
    }
}

/// Binding errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindError {
    /// The (ip, port) pair is already bound on this host.
    AddrInUse(SockAddr),
}

impl std::fmt::Display for BindError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BindError::AddrInUse(a) => write!(f, "address in use: {a}"),
        }
    }
}

impl std::error::Error for BindError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpState;

    const T0: SimTime = SimTime::ZERO;

    /// Two-host harness that shuttles Tx effects between stacks by route IP.
    struct Net {
        hosts: Vec<HostStack>,
        /// Collected non-Tx effects per host, for assertions.
        events: Vec<Vec<String>>,
    }

    impl Net {
        fn new(hosts: Vec<HostStack>) -> Net {
            let n = hosts.len();
            Net {
                hosts,
                events: vec![Vec::new(); n],
            }
        }

        fn host_by_ip(&mut self, ip: Ip) -> Option<usize> {
            self.hosts
                .iter()
                .position(|h| h.public_ip == ip || h.local_ip == ip)
        }

        /// Process effects, delivering Tx frames instantly (zero latency) and
        /// recording everything else. Loops until quiescent.
        fn pump(&mut self, from: usize, fx: Vec<StackEffect>, now: SimTime) {
            let mut queue: Vec<(usize, StackEffect)> = fx.into_iter().map(|e| (from, e)).collect();
            while let Some((origin, effect)) = queue.pop() {
                match effect {
                    StackEffect::Tx { seg, route } => {
                        if let Some(target) = self.host_by_ip(route) {
                            let fx = self.hosts[target].on_rx(seg, now);
                            queue.extend(fx.into_iter().map(|e| (target, e)));
                        }
                        // Frames routed to unknown IPs vanish (stale cache).
                    }
                    other => self.events[origin].push(format!("{other:?}")),
                }
            }
        }
    }

    fn two_cluster_nodes() -> Net {
        Net::new(vec![
            HostStack::server_node(NodeId(0), 1_000, 1),
            HostStack::server_node(NodeId(1), 2_000_000, 2),
        ])
    }

    fn establish(net: &mut Net, server: usize, client: usize, port: u16) -> (SockId, SockId) {
        let saddr = SockAddr::new(net.hosts[server].local_ip, port);
        let lid = net.hosts[server].tcp_listen(saddr).unwrap();
        let (cid, fx) = net.hosts[client].tcp_connect_local(saddr, T0);
        net.pump(client, fx, T0);
        // Find the server-side child: the most recent socket that isn't the
        // listener.
        let child = net.hosts[server]
            .socket_ids()
            .into_iter()
            .rfind(|s| *s != lid)
            .expect("child socket created");
        assert_eq!(
            net.hosts[server].sock(child).unwrap().tcp().state,
            TcpState::Established
        );
        assert_eq!(
            net.hosts[client].sock(cid).unwrap().tcp().state,
            TcpState::Established
        );
        (cid, child)
    }

    #[test]
    fn listen_accept_over_two_hosts() {
        let mut net = two_cluster_nodes();
        let (_cid, _child) = establish(&mut net, 0, 1, 3306);
        assert!(net.events[0].iter().any(|e| e.contains("NewConnection")));
        assert!(net.events[1].iter().any(|e| e.contains("Established")));
    }

    #[test]
    fn stream_data_is_delivered_in_order() {
        let mut net = two_cluster_nodes();
        let (cid, child) = establish(&mut net, 0, 1, 3306);
        for chunk in [&b"SELECT "[..], &b"* FROM "[..], &b"world"[..]] {
            let fx = net.hosts[1].send(cid, Bytes::copy_from_slice(chunk), T0);
            net.pump(1, fx, T0);
        }
        let got: Vec<u8> = net.hosts[0]
            .read_tcp(child, T0)
            .iter()
            .flat_map(|s| s.payload.to_vec())
            .collect();
        assert_eq!(got, b"SELECT * FROM world");
    }

    #[test]
    fn udp_port_ownership_on_shared_ip() {
        // Both nodes share the public IP; only node0 binds :27960, so the
        // broadcast copy at node1 is dropped.
        let mut net = two_cluster_nodes();
        let addr = SockAddr::new(Ip::CLUSTER_PUBLIC, 27960);
        let sid = net.hosts[0].udp_bind(addr).unwrap();
        let seg = Segment::udp(
            SockAddr::new(Ip::client_of(NodeId(9)), 5555),
            addr,
            Bytes::from_static(b"cmd"),
        );
        let fx0 = net.hosts[0].on_rx(seg.clone(), T0);
        assert_eq!(fx0.len(), 1, "owner delivers");
        let fx1 = net.hosts[1].on_rx(seg, T0);
        assert!(fx1.is_empty(), "non-owner drops silently");
        assert_eq!(net.hosts[1].stats().rx_dropped_no_socket, 1);
        assert_eq!(net.hosts[0].read_udp(sid).len(), 1);
    }

    #[test]
    fn bind_conflicts_are_rejected() {
        let mut h = HostStack::server_node(NodeId(0), 0, 1);
        let addr = SockAddr::new(Ip::CLUSTER_PUBLIC, 5000);
        h.tcp_listen(addr).unwrap();
        assert!(matches!(h.tcp_listen(addr), Err(BindError::AddrInUse(_))));
        assert!(matches!(h.udp_bind(addr), Err(BindError::AddrInUse(_))));
    }

    #[test]
    fn capture_steals_and_reinjection_delivers() {
        let mut net = two_cluster_nodes();
        let (cid, child) = establish(&mut net, 0, 1, 3306);
        let child_local = net.hosts[0].sock(child).unwrap().local();
        let client_local = net.hosts[1].sock(cid).unwrap().local();

        // Destination (node0 here, simulating its own blackout) enables
        // capture for the server-side socket's connection.
        let key = crate::capture::CaptureKey::connected(client_local, child_local.port);
        net.hosts[0].capture.enable(key, T0);

        // Client sends while capture is enabled: the segment is stolen.
        let fx = net.hosts[1].send(cid, Bytes::from_static(b"during-blackout"), T0);
        net.pump(1, fx, T0);
        assert!(
            net.hosts[0].read_tcp(child, T0).is_empty(),
            "stolen, not delivered"
        );
        assert_eq!(net.hosts[0].stats().rx_captured, 1);
        assert_eq!(net.hosts[0].capture.queued(&key), 1);

        // Drain + reinject via the okfn() path.
        let caps = net.hosts[0].capture.disable_and_drain(&key);
        for seg in caps {
            let fx = net.hosts[0].reinject(seg, T0);
            net.pump(0, fx, T0);
        }
        let got: Vec<u8> = net.hosts[0]
            .read_tcp(child, T0)
            .iter()
            .flat_map(|s| s.payload.to_vec())
            .collect();
        assert_eq!(got, b"during-blackout");
    }

    #[test]
    fn capture_disabled_hook_drops_during_blackout() {
        // Ablation: without the capture hook the segment reaches delivery,
        // but with the socket detached it is simply lost.
        let mut net = two_cluster_nodes();
        let (cid, child) = establish(&mut net, 0, 1, 3306);
        net.hosts[0].detach_socket(child).unwrap();
        let fx = net.hosts[1].send(cid, Bytes::from_static(b"lost"), T0);
        net.pump(1, fx, T0);
        assert_eq!(net.hosts[0].stats().rx_dropped_no_socket, 1);
    }

    #[test]
    fn detach_install_roundtrip_preserves_stream() {
        let mut net = two_cluster_nodes();
        let (cid, child) = establish(&mut net, 0, 1, 3306);

        // Ship some data before migration.
        let fx = net.hosts[1].send(cid, Bytes::from_static(b"before|"), T0);
        net.pump(1, fx, T0);

        // Detach the server-side socket from node0 and install on node... the
        // same host (pure detach/install mechanics; cross-node continuity is
        // exercised in dvelm-migrate).
        let sock = net.hosts[0].detach_socket(child).unwrap();
        assert!(!net.hosts[0].has_established(sock.local(), sock.remote().unwrap()));
        let (child2, fx) = net.hosts[0].install_socket(sock, T0);
        net.pump(0, fx, T0);

        let fx = net.hosts[1].send(cid, Bytes::from_static(b"after"), T0);
        net.pump(1, fx, T0);
        let got: Vec<u8> = net.hosts[0]
            .read_tcp(child2, T0)
            .iter()
            .flat_map(|s| s.payload.to_vec())
            .collect();
        assert_eq!(got, b"before|after");
    }

    #[test]
    fn timer_fires_and_retransmits_through_host() {
        let mut net = two_cluster_nodes();
        let saddr = SockAddr::new(net.hosts[0].local_ip, 3306);
        net.hosts[0].tcp_listen(saddr).unwrap();
        let (cid, fx) = net.hosts[1].tcp_connect_local(saddr, T0);
        net.pump(1, fx, T0);

        // Send into the void: detach the server child so data is lost.
        let child = net.hosts[0].socket_ids().into_iter().next_back().unwrap();
        net.hosts[0].detach_socket(child);
        let fx = net.hosts[1].send(cid, Bytes::from_static(b"x"), T0);
        // Extract the ArmTimer effect.
        let mut timer = None;
        for e in &fx {
            if let StackEffect::ArmTimer { sock, gen, at } = e {
                timer = Some((*sock, *gen, *at));
            }
        }
        net.pump(1, fx, T0);
        let (sock, gen, at) = timer.expect("send armed the timer");
        let fx = net.hosts[1].on_timer(sock, gen, at);
        assert!(
            fx.iter().any(|e| matches!(e, StackEffect::Tx { .. })),
            "RTO retransmits"
        );
        // A stale fire (old generation) is ignored.
        let fx = net.hosts[1].on_timer(sock, gen.wrapping_sub(1), at);
        assert!(fx.iter().all(|e| !matches!(e, StackEffect::Tx { .. })));
    }

    #[test]
    fn xlate_end_to_end_after_rebind() {
        // node0 hosts a DB server; node1 holds a client socket that
        // "migrates" to node... here we emulate: client socket created on
        // node1, detached, local-ip-rebound to node2's IP and installed there;
        // node0 gets a translation rule.
        let mut net = Net::new(vec![
            HostStack::server_node(NodeId(0), 0, 1),
            HostStack::server_node(NodeId(1), 0, 2),
            HostStack::server_node(NodeId(2), 0, 3),
        ]);
        let (cid, child) = establish(&mut net, 0, 1, 3306);
        let old_local = net.hosts[1].sock(cid).unwrap().local();
        let db_local = net.hosts[0].sock(child).unwrap().local();

        // Move the client socket from node1 to node2.
        let mut sock = net.hosts[1].detach_socket(cid).unwrap();
        sock.rebind_local_ip(net.hosts[2].local_ip);
        let (cid2, fx) = net.hosts[2].install_socket(sock, T0);
        net.pump(2, fx, T0);

        // Install the translation rule on the DB host (node0).
        let node2_ip = net.hosts[2].local_ip;
        net.hosts[0].xlate.install_at(
            crate::xlate::XlateRule::new(db_local, old_local.ip, node2_ip, old_local.port),
            T0,
        );

        // Migrated client sends; DB replies; reply is translated and routed
        // to node2.
        let fx = net.hosts[2].send(cid2, Bytes::from_static(b"UPDATE"), T0);
        net.pump(2, fx, T0);
        let q: Vec<u8> = net.hosts[0]
            .read_tcp(child, T0)
            .iter()
            .flat_map(|s| s.payload.to_vec())
            .collect();
        assert_eq!(q, b"UPDATE");

        let fx = net.hosts[0].send(child, Bytes::from_static(b"OK"), T0);
        net.pump(0, fx, T0);
        let r: Vec<u8> = net.hosts[2]
            .read_tcp(cid2, T0)
            .iter()
            .flat_map(|s| s.payload.to_vec())
            .collect();
        assert_eq!(r, b"OK");
        assert!(net.hosts[0].xlate.stats().rewritten_out >= 1);
        assert!(net.hosts[0].xlate.stats().rewritten_in >= 1);
    }

    #[test]
    fn stale_dst_cache_ablation_loses_replies() {
        let mut net = Net::new(vec![
            HostStack::server_node(NodeId(0), 0, 1),
            HostStack::server_node(NodeId(1), 0, 2),
            HostStack::server_node(NodeId(2), 0, 3),
        ]);
        let (cid, child) = establish(&mut net, 0, 1, 3306);
        let old_local = net.hosts[1].sock(cid).unwrap().local();
        let db_local = net.hosts[0].sock(child).unwrap().local();
        let mut sock = net.hosts[1].detach_socket(cid).unwrap();
        sock.rebind_local_ip(net.hosts[2].local_ip);
        let (cid2, fx) = net.hosts[2].install_socket(sock, T0);
        net.pump(2, fx, T0);
        let node2_ip = net.hosts[2].local_ip;
        net.hosts[0].xlate.install_at(
            crate::xlate::XlateRule {
                fix_dst_cache: false,
                ..crate::xlate::XlateRule::new(db_local, old_local.ip, node2_ip, old_local.port)
            },
            T0,
        );

        let fx = net.hosts[0].send(child, Bytes::from_static(b"hello?"), T0);
        net.pump(0, fx, T0);
        assert!(
            net.hosts[2].read_tcp(cid2, T0).is_empty(),
            "reply misrouted to the old host"
        );
        // The frame went to node1 (header says node2) → counted misrouted.
        assert_eq!(net.hosts[1].stats().rx_dropped_misrouted, 1);
    }

    #[test]
    fn bad_checksum_is_dropped() {
        let mut h = HostStack::server_node(NodeId(0), 0, 1);
        let addr = SockAddr::new(Ip::CLUSTER_PUBLIC, 27960);
        h.udp_bind(addr).unwrap();
        let mut seg = Segment::udp(
            SockAddr::new(Ip::client_of(NodeId(9)), 5555),
            addr,
            Bytes::new(),
        );
        seg.checksum_ok = false;
        let fx = h.on_rx(seg, T0);
        assert!(fx.is_empty());
        assert_eq!(h.stats().rx_dropped_bad_checksum, 1);
    }

    #[test]
    fn ephemeral_ports_do_not_collide_with_binds() {
        let mut h = HostStack::server_node(NodeId(0), 0, 1);
        h.udp_bind(SockAddr::new(Ip::CLUSTER_PUBLIC, 32_768))
            .unwrap();
        let sid = h.udp_bind_ephemeral();
        let p = h.sock(sid).unwrap().local().port;
        assert_ne!(p, Port(32_768));
    }

    #[test]
    fn release_cleans_all_tables() {
        let mut h = HostStack::server_node(NodeId(0), 0, 1);
        let addr = SockAddr::new(Ip::CLUSTER_PUBLIC, 7777);
        let sid = h.tcp_listen(addr).unwrap();
        assert!(h.is_bound(addr.ip, addr.port));
        h.release(sid);
        assert!(!h.is_bound(addr.ip, addr.port));
        assert_eq!(h.socket_count(), 0);
    }
}
