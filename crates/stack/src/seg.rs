//! Wire segments: IP header + TCP/UDP transport, with sequence-number
//! arithmetic helpers.
//!
//! Payloads are [`bytes::Bytes`] so a segment can be cloned (broadcast
//! delivers the same frame to five nodes) without copying the body.

use bytes::Bytes;
use dvelm_net::{Ip, SockAddr};
use dvelm_sim::Jiffies;
use std::fmt;

/// IPv4 header length in bytes.
pub const IP_HEADER_LEN: u64 = 20;
/// TCP header length including the timestamp option, in bytes.
pub const TCP_HEADER_LEN: u64 = 32;
/// UDP header length in bytes.
pub const UDP_HEADER_LEN: u64 = 8;

/// TCP flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct TcpFlags {
    /// Synchronize sequence numbers (connection open).
    pub syn: bool,
    /// Acknowledgment field significant.
    pub ack: bool,
    /// Sender finished (graceful close).
    pub fin: bool,
    /// Reset the connection.
    pub rst: bool,
}

impl TcpFlags {
    /// SYN only (active open).
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
    };
    /// SYN+ACK (passive-open reply).
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
    };
    /// Plain ACK.
    pub const ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
    };
    /// FIN+ACK (close).
    pub const FIN_ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: true,
        rst: false,
    };
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        if self.syn {
            s.push('S');
        }
        if self.fin {
            s.push('F');
        }
        if self.rst {
            s.push('R');
        }
        if self.ack {
            s.push('.');
        }
        write!(f, "{s}")
    }
}

/// Transport-layer content of a segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Transport {
    Tcp {
        flags: TcpFlags,
        /// Sequence number of the first payload byte (or of SYN/FIN).
        seq: u32,
        /// Acknowledgement number (valid when `flags.ack`).
        ack: u32,
        /// Advertised receive window, bytes.
        wnd: u32,
        /// Timestamp option: sender's jiffies at transmission.
        ts_val: Jiffies,
        /// Timestamp echo reply (0 when unknown).
        ts_ecr: Jiffies,
        payload: Bytes,
    },
    Udp {
        payload: Bytes,
    },
}

/// A wire segment: addressing plus transport content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Source endpoint.
    pub src: SockAddr,
    /// Destination endpoint.
    pub dst: SockAddr,
    /// Transport-layer content (TCP or UDP).
    pub transport: Transport,
    /// Whether the transport checksum is consistent with the headers. A
    /// translation filter that rewrites addresses without updating the
    /// checksum (§V-D) produces `false`, and the receiving stack drops the
    /// segment.
    pub checksum_ok: bool,
}

impl Segment {
    /// A TCP segment with a valid checksum.
    #[allow(clippy::too_many_arguments)]
    pub fn tcp(
        src: SockAddr,
        dst: SockAddr,
        flags: TcpFlags,
        seq: u32,
        ack: u32,
        wnd: u32,
        ts_val: Jiffies,
        ts_ecr: Jiffies,
        payload: Bytes,
    ) -> Segment {
        Segment {
            src,
            dst,
            transport: Transport::Tcp {
                flags,
                seq,
                ack,
                wnd,
                ts_val,
                ts_ecr,
                payload,
            },
            checksum_ok: true,
        }
    }

    /// A UDP datagram with a valid checksum.
    pub fn udp(src: SockAddr, dst: SockAddr, payload: Bytes) -> Segment {
        Segment {
            src,
            dst,
            transport: Transport::Udp { payload },
            checksum_ok: true,
        }
    }

    /// Payload length in bytes.
    pub fn payload_len(&self) -> usize {
        match &self.transport {
            Transport::Tcp { payload, .. } => payload.len(),
            Transport::Udp { payload } => payload.len(),
        }
    }

    /// Total on-wire size (IP + transport header + payload).
    pub fn wire_size(&self) -> u64 {
        let hdr = match &self.transport {
            Transport::Tcp { .. } => TCP_HEADER_LEN,
            Transport::Udp { .. } => UDP_HEADER_LEN,
        };
        IP_HEADER_LEN + hdr + self.payload_len() as u64
    }

    /// Whether this is a TCP segment.
    pub fn is_tcp(&self) -> bool {
        matches!(self.transport, Transport::Tcp { .. })
    }

    /// The TCP sequence number, if TCP.
    pub fn tcp_seq(&self) -> Option<u32> {
        match &self.transport {
            Transport::Tcp { seq, .. } => Some(*seq),
            Transport::Udp { .. } => None,
        }
    }

    /// Rewrite the destination IP (outgoing translation), invalidating the
    /// checksum unless `fix_checksum`.
    pub fn rewrite_dst_ip(&mut self, ip: Ip, fix_checksum: bool) {
        self.dst.ip = ip;
        if !fix_checksum {
            self.checksum_ok = false;
        }
    }

    /// Rewrite the source IP (incoming translation), invalidating the
    /// checksum unless `fix_checksum`.
    pub fn rewrite_src_ip(&mut self, ip: Ip, fix_checksum: bool) {
        self.src.ip = ip;
        if !fix_checksum {
            self.checksum_ok = false;
        }
    }
}

/// `a < b` in sequence space (RFC 793 modular comparison).
#[inline]
pub fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

/// `a <= b` in sequence space.
#[inline]
pub fn seq_le(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) <= 0
}

/// `a > b` in sequence space.
#[inline]
pub fn seq_gt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) > 0
}

/// `a >= b` in sequence space.
#[inline]
pub fn seq_ge(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) >= 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvelm_net::{Ip, NodeId};

    fn sa(last: u8, port: u16) -> SockAddr {
        SockAddr::new(Ip::new(10, 0, 0, last), port)
    }

    #[test]
    fn wire_sizes() {
        let s = Segment::tcp(
            sa(1, 10),
            sa(2, 20),
            TcpFlags::ACK,
            0,
            0,
            65535,
            Jiffies(0),
            Jiffies(0),
            Bytes::from(vec![0u8; 100]),
        );
        assert_eq!(s.wire_size(), 20 + 32 + 100);
        let u = Segment::udp(sa(1, 10), sa(2, 20), Bytes::from(vec![0u8; 256]));
        assert_eq!(u.wire_size(), 20 + 8 + 256);
    }

    #[test]
    fn seq_compare_handles_wraparound() {
        assert!(seq_lt(u32::MAX - 1, u32::MAX));
        assert!(seq_lt(u32::MAX, 0)); // wrap
        assert!(seq_gt(5, u32::MAX - 5));
        assert!(seq_le(7, 7));
        assert!(seq_ge(7, 7));
        assert!(!seq_lt(7, 7));
    }

    #[test]
    fn rewrite_dst_tracks_checksum() {
        let mut s = Segment::udp(sa(1, 10), sa(2, 20), Bytes::new());
        s.rewrite_dst_ip(Ip::local_of(NodeId(5)), true);
        assert!(s.checksum_ok);
        assert_eq!(s.dst.ip, Ip::local_of(NodeId(5)));
        s.rewrite_dst_ip(Ip::local_of(NodeId(6)), false);
        assert!(!s.checksum_ok, "unfixed checksum must be flagged bad");
    }

    #[test]
    fn rewrite_src_tracks_checksum() {
        let mut s = Segment::udp(sa(1, 10), sa(2, 20), Bytes::new());
        s.rewrite_src_ip(Ip::local_of(NodeId(3)), false);
        assert!(!s.checksum_ok);
    }

    #[test]
    fn flags_display() {
        assert_eq!(format!("{}", TcpFlags::SYN_ACK), "S.");
        assert_eq!(format!("{}", TcpFlags::FIN_ACK), "F.");
    }

    #[test]
    fn cloned_payload_shares_storage() {
        let payload = Bytes::from(vec![7u8; 1024]);
        let s = Segment::udp(sa(1, 1), sa(2, 2), payload.clone());
        let c = s.clone();
        // Bytes clones share the same backing buffer.
        match (&s.transport, &c.transport) {
            (Transport::Udp { payload: a }, Transport::Udp { payload: b }) => {
                assert_eq!(a.as_ptr(), b.as_ptr());
            }
            _ => unreachable!(),
        }
    }
}
