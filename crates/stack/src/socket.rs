//! The unified socket type: TCP or UDP, with the operations the migration
//! engine needs regardless of protocol.

use crate::tcp::{TcpSocket, TcpState};
use crate::udp::UdpSocket;
use dvelm_net::{Ip, SockAddr};

/// A socket: TCP or UDP.
// The TCP variant is much larger than UDP (sequence state, five queues,
// congestion/RTT fields). Boxing it would add an indirection to every
// receive-path access for the dominant variant; sockets live in a HashMap
// and are moved only at migration, so the size skew is fine.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Socket {
    Tcp(TcpSocket),
    Udp(UdpSocket),
}

impl Socket {
    /// Local endpoint.
    pub fn local(&self) -> SockAddr {
        match self {
            Socket::Tcp(t) => t.local,
            Socket::Udp(u) => u.local,
        }
    }

    /// Remote endpoint, if connected.
    pub fn remote(&self) -> Option<SockAddr> {
        match self {
            Socket::Tcp(t) => t.remote,
            Socket::Udp(u) => u.remote,
        }
    }

    /// Whether this is a TCP socket.
    pub fn is_tcp(&self) -> bool {
        matches!(self, Socket::Tcp(_))
    }

    /// Whether the socket is in a state the migration mechanism supports
    /// (TCP established/listening; UDP always).
    pub fn is_migratable(&self) -> bool {
        match self {
            Socket::Tcp(t) => t.state.is_migratable(),
            Socket::Udp(_) => true,
        }
    }

    /// Whether this is a TCP listening socket.
    pub fn is_listener(&self) -> bool {
        matches!(self, Socket::Tcp(t) if t.state == TcpState::Listen)
    }

    /// Stamp of the most recent mutation (incremental checkpoint driver).
    pub fn mutation_stamp(&self) -> u64 {
        match self {
            Socket::Tcp(t) => t.mutation_stamp(),
            Socket::Udp(u) => u.mutation_stamp(),
        }
    }

    /// Encoded size of a full checkpoint record.
    pub fn record_len(&self) -> u64 {
        match self {
            Socket::Tcp(t) => t.record_len(),
            Socket::Udp(u) => u.record_len(),
        }
    }

    /// Encoded size of an incremental record since `since`.
    pub fn delta_len(&self, since: u64) -> u64 {
        match self {
            Socket::Tcp(t) => t.delta_len(since),
            Socket::Udp(u) => u.delta_len(since),
        }
    }

    /// Rewrite the local IP (used when a migrated in-cluster socket is
    /// rebound to the destination node's local interface; the peer-side
    /// translation filter preserves the peer's view).
    pub fn rebind_local_ip(&mut self, ip: Ip) {
        match self {
            Socket::Tcp(t) => t.local.ip = ip,
            Socket::Udp(u) => u.local.ip = ip,
        }
    }

    /// Apply the source→destination jiffies delta (§V-C1).
    pub fn apply_jiffies_delta(&mut self, delta: i64) {
        match self {
            Socket::Tcp(t) => t.apply_jiffies_delta(delta),
            Socket::Udp(u) => u.apply_jiffies_delta(delta),
        }
    }

    /// Access the TCP socket, panicking for UDP (test/internal helper).
    pub fn tcp(&self) -> &TcpSocket {
        match self {
            Socket::Tcp(t) => t,
            Socket::Udp(_) => panic!("expected TCP socket"),
        }
    }

    /// Mutable access to the TCP socket, panicking for UDP.
    pub fn tcp_mut(&mut self) -> &mut TcpSocket {
        match self {
            Socket::Tcp(t) => t,
            Socket::Udp(_) => panic!("expected TCP socket"),
        }
    }

    /// Access the UDP socket, panicking for TCP.
    pub fn udp(&self) -> &UdpSocket {
        match self {
            Socket::Udp(u) => u,
            Socket::Tcp(_) => panic!("expected UDP socket"),
        }
    }

    /// Mutable access to the UDP socket, panicking for TCP.
    pub fn udp_mut(&mut self) -> &mut UdpSocket {
        match self {
            Socket::Udp(u) => u,
            Socket::Tcp(_) => panic!("expected UDP socket"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvelm_net::Ip;

    fn sa(last: u8, port: u16) -> SockAddr {
        SockAddr::new(Ip::new(10, 0, 0, last), port)
    }

    #[test]
    fn udp_is_always_migratable() {
        let s = Socket::Udp(UdpSocket::bind(sa(1, 1)));
        assert!(s.is_migratable());
        assert!(!s.is_listener());
        assert!(!s.is_tcp());
    }

    #[test]
    fn tcp_listener_is_migratable_and_detected() {
        let s = Socket::Tcp(TcpSocket::listen(sa(1, 80)));
        assert!(s.is_migratable());
        assert!(s.is_listener());
    }

    #[test]
    fn rebind_local_ip_rewrites_only_ip() {
        let mut s = Socket::Udp(UdpSocket::bind(sa(1, 99)));
        s.rebind_local_ip(Ip::new(10, 0, 0, 7));
        assert_eq!(s.local(), sa(7, 99));
    }

    #[test]
    #[should_panic(expected = "expected TCP")]
    fn wrong_accessor_panics() {
        let s = Socket::Udp(UdpSocket::bind(sa(1, 1)));
        let _ = s.tcp();
    }
}
