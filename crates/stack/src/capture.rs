//! Incoming-packet-loss prevention: the capture table (§III-B, §V-B).
//!
//! Before a socket is disabled on the source node, the *destination* node
//! enables capturing for the connection — keyed by remote IP, remote port and
//! local port, exactly the triple the paper transfers. While the socket is in
//! transit, the broadcast router still delivers the client's packets to the
//! destination node, where the `LOCAL_IN` hook steals and queues them. TCP
//! sequence numbers deduplicate retransmitted packets ("stores duplicated
//! packets only once"). After the socket is restored, the queue is drained in
//! sequence order and each packet is re-submitted to the stack via the
//! equivalent of netfilter's `okfn()`.

use crate::seg::{Segment, Transport};
use dvelm_net::{Port, SockAddr};
use dvelm_sim::SimTime;
use std::collections::{BTreeMap, VecDeque};

/// What a capture entry matches: the migrating socket's local port plus, for
/// connected (TCP) sockets, the remote endpoint. A UDP server socket talks to
/// many remotes, so its entry matches on local port alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CaptureKey {
    /// Local port of the migrating socket.
    pub local_port: Port,
    /// Remote endpoint; `None` matches any remote (UDP server sockets).
    pub remote: Option<SockAddr>,
}

impl CaptureKey {
    /// Key for a connected socket (the paper's TCP triple).
    pub fn connected(remote: SockAddr, local_port: Port) -> CaptureKey {
        CaptureKey {
            local_port,
            remote: Some(remote),
        }
    }

    /// Key for an unconnected (server) socket: any remote.
    pub fn any_remote(local_port: Port) -> CaptureKey {
        CaptureKey {
            local_port,
            remote: None,
        }
    }
}

/// What to do when a TCP capture queue hits its [`CaptureBudget`].
///
/// UDP always sheds oldest-first (datagram loss is part of the service
/// model). TCP is the policy decision: the dedup key already coalesces
/// retransmissions for free, so the only question is what happens to a
/// *new* segment that does not fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcpShedPolicy {
    /// Refuse the new segment at the hook. The drop is indistinguishable
    /// from wire loss: the sender's retransmission timer re-offers the
    /// segment, and dedup stores it once when room exists (or it is
    /// delivered normally once the socket is restored). No TCP state is
    /// lost — recovery is deferred to the protocol.
    CoalesceBySeq,
    /// Never shed TCP under pressure: report a hard failure so the caller
    /// aborts the migration instead (the compensating-effect rollback then
    /// resumes the source copy, which ACKs normally). Use when deferring
    /// to retransmission is unacceptable.
    HardFail,
}

/// Byte/packet budget for one capture entry. The default is unlimited,
/// which reproduces the paper's (unbounded) behaviour exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaptureBudget {
    /// Max packets queued per entry (TCP + UDP together).
    pub max_packets: usize,
    /// Max payload bytes queued per entry.
    pub max_bytes: usize,
    /// What to do when a new TCP segment does not fit.
    pub tcp_policy: TcpShedPolicy,
}

impl CaptureBudget {
    /// No limits: capture everything, as the paper does.
    pub const UNLIMITED: CaptureBudget = CaptureBudget {
        max_packets: usize::MAX,
        max_bytes: usize::MAX,
        tcp_policy: TcpShedPolicy::CoalesceBySeq,
    };

    /// A bounded budget with the default (coalesce) TCP policy.
    pub fn bounded(max_packets: usize, max_bytes: usize) -> CaptureBudget {
        CaptureBudget {
            max_packets,
            max_bytes,
            tcp_policy: TcpShedPolicy::CoalesceBySeq,
        }
    }

    /// Whether this budget can ever shed.
    pub fn is_unlimited(&self) -> bool {
        self.max_packets == usize::MAX && self.max_bytes == usize::MAX
    }
}

impl Default for CaptureBudget {
    fn default() -> CaptureBudget {
        CaptureBudget::UNLIMITED
    }
}

/// What [`CaptureTable::capture`] did with a segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureOutcome {
    /// No enabled entry matches; the hook passes the packet on.
    NotMatched,
    /// Stolen and queued.
    Captured,
    /// Stolen; an identical (seq, len) segment was already queued — stored
    /// once (the coalesce that makes TCP shedding safe).
    Duplicate,
    /// Stolen and queued after shedding the oldest queued UDP datagram(s)
    /// to make room.
    CapturedShedOldest,
    /// Refused under budget pressure. The packet must be treated as lost
    /// on the wire; the transport (TCP retransmission) or the service
    /// model (UDP best-effort) recovers.
    RefusedRecoverable,
    /// Refused under [`TcpShedPolicy::HardFail`]: queueing would exceed
    /// the budget and shedding is forbidden. The caller must abort the
    /// migration so the source copy resumes and ACKs the retransmission.
    HardFailRefused,
}

/// Why a [`PressureEvent`] was recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PressureKind {
    /// Oldest UDP datagram(s) shed to admit a new one.
    ShedOldestUdp,
    /// New UDP datagram refused (the queue is full of TCP segments or the
    /// datagram alone exceeds the byte budget).
    RefusedUdp,
    /// New TCP segment refused; retransmission recovers it.
    RefusedTcp,
    /// New TCP segment refused under [`TcpShedPolicy::HardFail`].
    HardFail,
}

/// A budget-pressure incident on one capture queue, recorded so the world
/// can surface it on the owning migration's effect stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PressureEvent {
    /// The capture entry whose budget was hit.
    pub key: CaptureKey,
    /// What the budget forced (shed, refusal, escalation).
    pub kind: PressureKind,
    /// Occupancy after the incident, packets.
    pub queued_packets: u64,
    /// Occupancy after the incident, bytes.
    pub queued_bytes: u64,
    /// Packets shed or refused by this incident.
    pub shed_packets: u64,
}

/// One enabled capture, with its queued packets.
#[derive(Debug, Clone)]
struct CaptureEntry {
    /// TCP packets keyed by (seq, len) — the dedup the hook performs.
    tcp_queue: BTreeMap<(u32, u32), Segment>,
    /// UDP packets in arrival order (no sequence numbers to dedup on);
    /// a deque because budget pressure sheds oldest-first.
    udp_queue: VecDeque<Segment>,
    enabled_at: SimTime,
    /// Packets discarded as duplicates.
    duplicates: u64,
    /// Payload bytes currently queued (both queues).
    queued_bytes: usize,
    /// Payload bytes of `udp_queue` alone (kept incrementally so the hot
    /// path never re-sums the queue to split UDP from TCP occupancy).
    udp_bytes: usize,
}

impl CaptureEntry {
    fn queued_packets(&self) -> usize {
        self.tcp_queue.len() + self.udp_queue.len()
    }
}

/// Counters for tests and reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaptureStats {
    /// Segments stolen and queued by the `LOCAL_IN` hook.
    pub captured: u64,
    /// Retransmissions coalesced by the seq dedup key.
    pub duplicates: u64,
    /// Queued segments re-submitted to the stack after restore.
    pub reinjected: u64,
    /// Enable attempts refused by an armed failure (fault injection).
    pub install_failures: u64,
    /// UDP datagrams shed (oldest-first) or refused under budget pressure.
    pub shed_udp: u64,
    /// TCP segments refused under [`TcpShedPolicy::CoalesceBySeq`]
    /// pressure (recovered by retransmission).
    pub shed_tcp_refused: u64,
    /// TCP segments refused under [`TcpShedPolicy::HardFail`] (each one
    /// demands a migration abort).
    pub hard_failures: u64,
    /// High-water mark of packets queued in any single entry.
    pub peak_queued_packets: u64,
    /// High-water mark of payload bytes queued in any single entry.
    pub peak_queued_bytes: u64,
}

/// The per-host capture table consulted by the `LOCAL_IN` hook.
#[derive(Debug, Default)]
pub struct CaptureTable {
    entries: BTreeMap<CaptureKey, CaptureEntry>,
    stats: CaptureStats,
    /// Fault injection: the next this many [`try_enable`](Self::try_enable)
    /// calls fail (a hook registration the kernel refused).
    armed_failures: u32,
    /// Per-entry budget applied by [`capture`](Self::capture).
    budget: CaptureBudget,
    /// Pressure incidents since the last [`take_pressure_events`]
    /// (Self::take_pressure_events) call.
    pressure: Vec<PressureEvent>,
}

impl CaptureTable {
    /// An empty table.
    pub fn new() -> CaptureTable {
        CaptureTable::default()
    }

    /// Enable capturing for `key`. Idempotent: re-enabling keeps already
    /// captured packets.
    pub fn enable(&mut self, key: CaptureKey, now: SimTime) {
        self.entries.entry(key).or_insert(CaptureEntry {
            tcp_queue: BTreeMap::new(),
            udp_queue: VecDeque::new(),
            enabled_at: now,
            duplicates: 0,
            queued_bytes: 0,
            udp_bytes: 0,
        });
    }

    /// Set the per-entry byte/packet budget (default: unlimited).
    pub fn set_budget(&mut self, budget: CaptureBudget) {
        self.budget = budget;
    }

    /// The budget [`capture`](Self::capture) enforces.
    pub fn budget(&self) -> CaptureBudget {
        self.budget
    }

    /// Fallible [`enable`](Self::enable): fails (returning `false`) while
    /// armed failures remain. The infallible `enable` ignores arming, so
    /// existing callers are unaffected.
    pub fn try_enable(&mut self, key: CaptureKey, now: SimTime) -> bool {
        if self.armed_failures > 0 {
            self.armed_failures -= 1;
            self.stats.install_failures += 1;
            return false;
        }
        self.enable(key, now);
        true
    }

    /// Fault injection: make the next `n` [`try_enable`](Self::try_enable)
    /// calls fail.
    pub fn arm_enable_failures(&mut self, n: u32) {
        self.armed_failures = n;
    }

    /// Number of enabled entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are enabled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether capturing is enabled for `key`.
    pub fn is_enabled(&self, key: &CaptureKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Packets currently queued under `key`.
    pub fn queued(&self, key: &CaptureKey) -> usize {
        self.entries
            .get(key)
            .map(|e| e.tcp_queue.len() + e.udp_queue.len())
            .unwrap_or(0)
    }

    /// Hook function: if the segment matches an enabled entry, steal it.
    /// Returns `true` when stolen. Budget refusals return `false`: the
    /// packet falls through the hook exactly as wire loss would.
    pub fn try_capture(&mut self, seg: &Segment) -> bool {
        matches!(
            self.capture(seg),
            CaptureOutcome::Captured
                | CaptureOutcome::Duplicate
                | CaptureOutcome::CapturedShedOldest
        )
    }

    /// Hook function with the full budget verdict. [`try_capture`](Self::try_capture)
    /// is the boolean view of this.
    pub fn capture(&mut self, seg: &Segment) -> CaptureOutcome {
        let connected = CaptureKey::connected(seg.src, seg.dst.port);
        let wildcard = CaptureKey::any_remote(seg.dst.port);
        let key = if self.entries.contains_key(&connected) {
            connected
        } else {
            wildcard
        };
        let Some(entry) = self.entries.get_mut(&key) else {
            return CaptureOutcome::NotMatched;
        };
        let budget = self.budget;
        match &seg.transport {
            Transport::Tcp { seq, payload, .. } => {
                let len = payload.len();
                let dedup_key = (*seq, len as u32);
                if entry.tcp_queue.contains_key(&dedup_key) {
                    // Coalesce-by-seq: a retransmission of a queued segment
                    // is free — stored once, no budget consumed.
                    entry.duplicates += 1;
                    self.stats.duplicates += 1;
                    return CaptureOutcome::Duplicate;
                }
                if entry.queued_packets() + 1 > budget.max_packets
                    || entry.queued_bytes.saturating_add(len) > budget.max_bytes
                {
                    let event = PressureEvent {
                        key,
                        kind: match budget.tcp_policy {
                            TcpShedPolicy::CoalesceBySeq => PressureKind::RefusedTcp,
                            TcpShedPolicy::HardFail => PressureKind::HardFail,
                        },
                        queued_packets: entry.queued_packets() as u64,
                        queued_bytes: entry.queued_bytes as u64,
                        shed_packets: 1,
                    };
                    self.pressure.push(event);
                    return match budget.tcp_policy {
                        TcpShedPolicy::CoalesceBySeq => {
                            self.stats.shed_tcp_refused += 1;
                            CaptureOutcome::RefusedRecoverable
                        }
                        TcpShedPolicy::HardFail => {
                            self.stats.hard_failures += 1;
                            CaptureOutcome::HardFailRefused
                        }
                    };
                }
                entry.tcp_queue.insert(dedup_key, seg.clone());
                entry.queued_bytes += len;
                self.stats.captured += 1;
                Self::note_peak(&mut self.stats, entry);
                CaptureOutcome::Captured
            }
            Transport::Udp { .. } => {
                let len = seg.payload_len();
                // Full of TCP segments, or this datagram alone exceeds the
                // byte budget after TCP's share: even an empty UDP queue
                // could not admit it, so refuse the newcomer up front
                // instead of shedding the whole queue for nothing.
                let tcp_bytes = entry.queued_bytes - entry.udp_bytes;
                if entry.tcp_queue.len() + 1 > budget.max_packets
                    || tcp_bytes.saturating_add(len) > budget.max_bytes
                {
                    self.stats.shed_udp += 1;
                    self.pressure.push(PressureEvent {
                        key,
                        kind: PressureKind::RefusedUdp,
                        queued_packets: entry.queued_packets() as u64,
                        queued_bytes: entry.queued_bytes as u64,
                        shed_packets: 1,
                    });
                    return CaptureOutcome::RefusedRecoverable;
                }
                let mut shed = 0u64;
                // Drop-oldest: UDP datagrams are best-effort, so the most
                // recent state wins (DVE position updates supersede older
                // ones anyway). The up-front check guarantees this loop
                // frees enough room for the newcomer.
                while entry.queued_packets() + 1 > budget.max_packets
                    || entry.queued_bytes.saturating_add(len) > budget.max_bytes
                {
                    let Some(old) = entry.udp_queue.pop_front() else {
                        break;
                    };
                    let old_len = old.payload_len();
                    entry.queued_bytes -= old_len;
                    entry.udp_bytes -= old_len;
                    shed += 1;
                    self.stats.shed_udp += 1;
                }
                entry.udp_queue.push_back(seg.clone());
                entry.queued_bytes += len;
                entry.udp_bytes += len;
                self.stats.captured += 1;
                Self::note_peak(&mut self.stats, entry);
                if shed > 0 {
                    let event = PressureEvent {
                        key,
                        kind: PressureKind::ShedOldestUdp,
                        queued_packets: entry.queued_packets() as u64,
                        queued_bytes: entry.queued_bytes as u64,
                        shed_packets: shed,
                    };
                    self.pressure.push(event);
                    CaptureOutcome::CapturedShedOldest
                } else {
                    CaptureOutcome::Captured
                }
            }
        }
    }

    fn note_peak(stats: &mut CaptureStats, entry: &CaptureEntry) {
        let packets = entry.queued_packets() as u64;
        let bytes = entry.queued_bytes as u64;
        stats.peak_queued_packets = stats.peak_queued_packets.max(packets);
        stats.peak_queued_bytes = stats.peak_queued_bytes.max(bytes);
    }

    /// Occupancy of one entry: (queued packets, queued payload bytes).
    pub fn occupancy(&self, key: &CaptureKey) -> Option<(usize, usize)> {
        self.entries
            .get(key)
            .map(|e| (e.queued_packets(), e.queued_bytes))
    }

    /// Total payload bytes queued across all entries.
    pub fn total_queued_bytes(&self) -> usize {
        self.entries.values().map(|e| e.queued_bytes).sum()
    }

    /// Total packets queued across all entries.
    pub fn total_queued_packets(&self) -> usize {
        self.entries.values().map(|e| e.queued_packets()).sum()
    }

    /// Drain the budget-pressure incidents recorded since the last call.
    pub fn take_pressure_events(&mut self) -> Vec<PressureEvent> {
        std::mem::take(&mut self.pressure)
    }

    /// Disable the entry and return its queued packets in reinjection order
    /// (TCP in sequence order, then UDP in arrival order).
    pub fn disable_and_drain(&mut self, key: &CaptureKey) -> Vec<Segment> {
        let Some(entry) = self.entries.remove(key) else {
            return Vec::new();
        };
        let mut out: Vec<Segment> = entry.tcp_queue.into_values().collect();
        out.extend(entry.udp_queue);
        self.stats.reinjected += out.len() as u64;
        out
    }

    /// When the entry was enabled (for diagnostics).
    pub fn enabled_at(&self, key: &CaptureKey) -> Option<SimTime> {
        self.entries.get(key).map(|e| e.enabled_at)
    }

    /// Aggregate counters.
    pub fn stats(&self) -> CaptureStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seg::TcpFlags;
    use bytes::Bytes;
    use dvelm_net::Ip;
    use dvelm_sim::Jiffies;

    fn sa(last: u8, port: u16) -> SockAddr {
        SockAddr::new(Ip::new(10, 0, 0, last), port)
    }

    fn tcp_seg(seq: u32, len: usize) -> Segment {
        Segment::tcp(
            sa(3, 3306),
            sa(1, 5000),
            TcpFlags::ACK,
            seq,
            0,
            65535,
            Jiffies(0),
            Jiffies(0),
            Bytes::from(vec![0u8; len]),
        )
    }

    #[test]
    fn capture_matches_triple() {
        let mut t = CaptureTable::new();
        t.enable(
            CaptureKey::connected(sa(3, 3306), Port(5000)),
            SimTime::ZERO,
        );
        assert!(t.try_capture(&tcp_seg(100, 10)));
        // Different remote port: no match.
        let mut other = tcp_seg(100, 10);
        other.src = sa(3, 9999);
        assert!(!t.try_capture(&other));
        // Different local port: no match.
        let mut other = tcp_seg(100, 10);
        other.dst = sa(1, 6000);
        assert!(!t.try_capture(&other));
    }

    #[test]
    fn duplicates_stored_once() {
        let mut t = CaptureTable::new();
        let key = CaptureKey::connected(sa(3, 3306), Port(5000));
        t.enable(key, SimTime::ZERO);
        assert!(t.try_capture(&tcp_seg(100, 10)));
        assert!(t.try_capture(&tcp_seg(100, 10)), "dup is still stolen");
        assert_eq!(t.queued(&key), 1, "but stored once");
        assert_eq!(t.stats().duplicates, 1);
    }

    #[test]
    fn drain_is_in_sequence_order() {
        let mut t = CaptureTable::new();
        let key = CaptureKey::connected(sa(3, 3306), Port(5000));
        t.enable(key, SimTime::ZERO);
        t.try_capture(&tcp_seg(300, 10));
        t.try_capture(&tcp_seg(100, 10));
        t.try_capture(&tcp_seg(200, 10));
        let drained = t.disable_and_drain(&key);
        let seqs: Vec<u32> = drained.iter().map(|s| s.tcp_seq().unwrap()).collect();
        assert_eq!(seqs, vec![100, 200, 300]);
        assert!(!t.is_enabled(&key), "drain disables");
        assert_eq!(t.stats().reinjected, 3);
    }

    #[test]
    fn wildcard_matches_any_remote_udp() {
        let mut t = CaptureTable::new();
        let key = CaptureKey::any_remote(Port(27960));
        t.enable(key, SimTime::ZERO);
        let a = Segment::udp(sa(8, 1111), sa(1, 27960), Bytes::from_static(b"a"));
        let b = Segment::udp(sa(9, 2222), sa(1, 27960), Bytes::from_static(b"b"));
        assert!(t.try_capture(&a));
        assert!(t.try_capture(&b));
        assert_eq!(t.queued(&key), 2);
        let drained = t.disable_and_drain(&key);
        assert_eq!(drained.len(), 2);
        // UDP drains in arrival order.
        assert_eq!(drained[0].src, sa(8, 1111));
    }

    #[test]
    fn connected_entry_takes_precedence_over_wildcard() {
        let mut t = CaptureTable::new();
        let conn = CaptureKey::connected(sa(3, 3306), Port(5000));
        let wild = CaptureKey::any_remote(Port(5000));
        t.enable(conn, SimTime::ZERO);
        t.enable(wild, SimTime::ZERO);
        t.try_capture(&tcp_seg(1, 1));
        assert_eq!(t.queued(&conn), 1);
        assert_eq!(t.queued(&wild), 0);
    }

    #[test]
    fn drain_unknown_key_is_empty() {
        let mut t = CaptureTable::new();
        assert!(t
            .disable_and_drain(&CaptureKey::any_remote(Port(1)))
            .is_empty());
    }

    #[test]
    fn enable_is_idempotent_and_keeps_packets() {
        let mut t = CaptureTable::new();
        let key = CaptureKey::connected(sa(3, 3306), Port(5000));
        t.enable(key, SimTime::ZERO);
        t.try_capture(&tcp_seg(7, 3));
        t.enable(key, SimTime::from_millis(5));
        assert_eq!(t.queued(&key), 1);
        assert_eq!(t.enabled_at(&key), Some(SimTime::ZERO));
    }

    #[test]
    fn fault_armed_enable_failures_then_recover() {
        let mut t = CaptureTable::new();
        let key = CaptureKey::connected(sa(3, 3306), Port(5000));
        t.arm_enable_failures(2);
        assert!(!t.try_enable(key, SimTime::ZERO));
        assert!(!t.try_enable(key, SimTime::ZERO));
        assert!(t.try_enable(key, SimTime::ZERO), "arming is consumed");
        assert!(t.is_enabled(&key));
        assert_eq!(t.stats().install_failures, 2);
        // The infallible path never fails, armed or not.
        t.arm_enable_failures(1);
        t.enable(CaptureKey::any_remote(Port(80)), SimTime::ZERO);
        assert!(t.is_enabled(&CaptureKey::any_remote(Port(80))));
    }

    #[test]
    fn fault_burst_retransmissions_dedup_and_drain_in_order() {
        // A correlated loss burst during the freeze window makes the client
        // retransmit the same flight several times, interleaved with new
        // data once the burst lifts. Every arrival is stolen, duplicates
        // are stored once, and the drain is still strictly in-order — the
        // property reinjection after an abort or a restore relies on.
        let mut t = CaptureTable::new();
        let key = CaptureKey::connected(sa(3, 3306), Port(5000));
        t.enable(key, SimTime::ZERO);
        // Three identical retransmissions of a 3-segment flight...
        for _ in 0..3 {
            for seq in [100, 110, 120] {
                assert!(t.try_capture(&tcp_seg(seq, 10)));
            }
        }
        // ...then the burst lifts and new data arrives out of order.
        t.try_capture(&tcp_seg(140, 10));
        t.try_capture(&tcp_seg(130, 10));
        assert_eq!(t.queued(&key), 5, "flight stored once + 2 new segments");
        assert_eq!(t.stats().duplicates, 6);
        let seqs: Vec<u32> = t
            .disable_and_drain(&key)
            .iter()
            .map(|s| s.tcp_seq().unwrap())
            .collect();
        assert_eq!(seqs, vec![100, 110, 120, 130, 140]);
    }

    #[test]
    fn dedup_still_exact_at_seq_wraparound() {
        // A retransmission storm straddling the u32 sequence-number
        // wraparound: the (seq, len) dedup key must not confuse pre-wrap
        // and post-wrap segments, and duplicates on either side of the
        // boundary are still stored once.
        let mut t = CaptureTable::new();
        let key = CaptureKey::connected(sa(3, 3306), Port(5000));
        t.enable(key, SimTime::ZERO);
        for seq in [u32::MAX - 1, u32::MAX, 0, 1] {
            assert!(t.try_capture(&tcp_seg(seq, 10)));
            assert!(t.try_capture(&tcp_seg(seq, 10)), "dup at seq {seq} stolen");
        }
        assert_eq!(t.queued(&key), 4, "one entry per distinct seq");
        assert_eq!(t.stats().duplicates, 4);
    }

    #[test]
    fn drain_order_at_wraparound_is_numeric_not_modular() {
        // The queue is keyed by raw (seq, len): post-wrap segments (0, 1)
        // drain *before* pre-wrap ones (MAX-1, MAX). That is fine for
        // re-injection — the receiving TCP reorders by sequence arithmetic
        // — but it is a documented property of the capture queue, not
        // modular 2^31 ordering.
        let mut t = CaptureTable::new();
        let key = CaptureKey::connected(sa(3, 3306), Port(5000));
        t.enable(key, SimTime::ZERO);
        for seq in [u32::MAX, 1, u32::MAX - 1, 0] {
            t.try_capture(&tcp_seg(seq, 10));
        }
        let seqs: Vec<u32> = t
            .disable_and_drain(&key)
            .iter()
            .map(|s| s.tcp_seq().unwrap())
            .collect();
        assert_eq!(seqs, vec![0, 1, u32::MAX - 1, u32::MAX]);
    }

    #[test]
    fn udp_budget_sheds_oldest_first() {
        let mut t = CaptureTable::new();
        t.set_budget(CaptureBudget::bounded(3, usize::MAX));
        let key = CaptureKey::any_remote(Port(27960));
        t.enable(key, SimTime::ZERO);
        for i in 0..5u8 {
            let seg = Segment::udp(sa(8, 1000 + i as u16), sa(1, 27960), Bytes::from(vec![i]));
            assert!(t.try_capture(&seg), "newest datagram always admitted");
        }
        assert_eq!(t.queued(&key), 3, "budget respected");
        assert_eq!(t.stats().shed_udp, 2);
        assert!(t.stats().peak_queued_packets <= 3);
        let drained = t.disable_and_drain(&key);
        // Oldest were shed: the three newest survive in arrival order.
        let ports: Vec<u16> = drained.iter().map(|s| s.src.port.0).collect();
        assert_eq!(ports, vec![1002, 1003, 1004]);
        let pressure = t.take_pressure_events();
        assert_eq!(pressure.len(), 2);
        assert!(pressure
            .iter()
            .all(|p| p.kind == PressureKind::ShedOldestUdp && p.key == key));
    }

    #[test]
    fn tcp_budget_refuses_new_but_coalesces_duplicates() {
        let mut t = CaptureTable::new();
        t.set_budget(CaptureBudget::bounded(2, usize::MAX));
        let key = CaptureKey::connected(sa(3, 3306), Port(5000));
        t.enable(key, SimTime::ZERO);
        assert!(t.try_capture(&tcp_seg(100, 10)));
        assert!(t.try_capture(&tcp_seg(110, 10)));
        // A *new* segment is refused (wire loss: retransmission recovers)…
        assert!(!t.try_capture(&tcp_seg(120, 10)));
        // …but a retransmission of a queued one is still coalesced.
        assert!(t.try_capture(&tcp_seg(100, 10)));
        assert_eq!(t.queued(&key), 2);
        assert_eq!(t.stats().shed_tcp_refused, 1);
        assert_eq!(t.stats().duplicates, 1);
        // Everything queued is intact and ordered: no TCP state was lost.
        let seqs: Vec<u32> = t
            .disable_and_drain(&key)
            .iter()
            .map(|s| s.tcp_seq().unwrap())
            .collect();
        assert_eq!(seqs, vec![100, 110]);
        let pressure = t.take_pressure_events();
        assert_eq!(pressure.len(), 1);
        assert_eq!(pressure[0].kind, PressureKind::RefusedTcp);
    }

    #[test]
    fn tcp_byte_budget_counts_payload() {
        let mut t = CaptureTable::new();
        t.set_budget(CaptureBudget::bounded(usize::MAX, 25));
        let key = CaptureKey::connected(sa(3, 3306), Port(5000));
        t.enable(key, SimTime::ZERO);
        assert!(t.try_capture(&tcp_seg(100, 10)));
        assert!(t.try_capture(&tcp_seg(110, 10)));
        assert!(!t.try_capture(&tcp_seg(120, 10)), "26 bytes > 25 budget");
        assert_eq!(t.occupancy(&key), Some((2, 20)));
        assert_eq!(t.stats().peak_queued_bytes, 20);
    }

    #[test]
    fn tcp_hard_fail_policy_signals_abort() {
        let mut t = CaptureTable::new();
        t.set_budget(CaptureBudget {
            max_packets: 1,
            max_bytes: usize::MAX,
            tcp_policy: TcpShedPolicy::HardFail,
        });
        let key = CaptureKey::connected(sa(3, 3306), Port(5000));
        t.enable(key, SimTime::ZERO);
        assert_eq!(t.capture(&tcp_seg(100, 10)), CaptureOutcome::Captured);
        assert_eq!(
            t.capture(&tcp_seg(110, 10)),
            CaptureOutcome::HardFailRefused
        );
        assert_eq!(t.stats().hard_failures, 1);
        let pressure = t.take_pressure_events();
        assert_eq!(pressure.len(), 1);
        assert_eq!(pressure[0].kind, PressureKind::HardFail);
        // The queue itself never exceeded its budget.
        assert_eq!(t.queued(&key), 1);
    }

    #[test]
    fn udp_refused_when_tcp_holds_the_budget() {
        let mut t = CaptureTable::new();
        t.set_budget(CaptureBudget::bounded(1, usize::MAX));
        let key = CaptureKey::any_remote(Port(5000));
        t.enable(key, SimTime::ZERO);
        assert!(t.try_capture(&tcp_seg(100, 10)));
        let udp = Segment::udp(sa(8, 1111), sa(1, 5000), Bytes::from_static(b"x"));
        assert_eq!(t.capture(&udp), CaptureOutcome::RefusedRecoverable);
        assert_eq!(t.queued(&key), 1, "TCP segment is never displaced by UDP");
        assert_eq!(t.stats().shed_udp, 1);
    }

    #[test]
    fn udp_never_fitting_newcomer_refused_without_shedding() {
        // 25-byte budget, 10 of them held by TCP: a 20-byte datagram can
        // never fit even with an empty UDP queue, so the queued datagrams
        // must survive the refusal instead of being shed for nothing.
        let mut t = CaptureTable::new();
        t.set_budget(CaptureBudget::bounded(10, 25));
        let key = CaptureKey::any_remote(Port(5000));
        t.enable(key, SimTime::ZERO);
        assert!(t.try_capture(&tcp_seg(100, 10)));
        for i in 0..2u8 {
            let seg = Segment::udp(sa(8, 1000 + i as u16), sa(1, 5000), Bytes::from(vec![i; 5]));
            assert!(t.try_capture(&seg));
        }
        let big = Segment::udp(sa(8, 2000), sa(1, 5000), Bytes::from(vec![9u8; 20]));
        assert_eq!(t.capture(&big), CaptureOutcome::RefusedRecoverable);
        assert_eq!(
            t.occupancy(&key),
            Some((3, 20)),
            "previously queued packets must not be shed for a hopeless newcomer"
        );
        assert_eq!(t.stats().shed_udp, 1, "only the newcomer is counted");
        let pressure = t.take_pressure_events();
        assert_eq!(pressure.len(), 1);
        assert_eq!(pressure[0].kind, PressureKind::RefusedUdp);
        assert_eq!(pressure[0].shed_packets, 1);
    }

    #[test]
    fn unlimited_budget_never_sheds() {
        let mut t = CaptureTable::new();
        assert!(t.budget().is_unlimited());
        let key = CaptureKey::connected(sa(3, 3306), Port(5000));
        t.enable(key, SimTime::ZERO);
        for seq in 0..1000u32 {
            assert!(t.try_capture(&tcp_seg(seq * 10, 10)));
        }
        assert_eq!(t.queued(&key), 1000);
        assert!(t.take_pressure_events().is_empty());
        assert_eq!(t.stats().shed_tcp_refused + t.stats().shed_udp, 0);
    }

    #[test]
    fn same_seq_different_len_are_distinct_at_wraparound() {
        // A shrunk retransmission at seq u32::MAX (different payload
        // length) is a distinct queue entry, and the shorter one drains
        // first within the same sequence number.
        let mut t = CaptureTable::new();
        let key = CaptureKey::connected(sa(3, 3306), Port(5000));
        t.enable(key, SimTime::ZERO);
        t.try_capture(&tcp_seg(u32::MAX, 24));
        t.try_capture(&tcp_seg(u32::MAX, 8));
        assert_eq!(t.queued(&key), 2);
        assert_eq!(t.stats().duplicates, 0);
        let lens: Vec<usize> = t
            .disable_and_drain(&key)
            .iter()
            .map(|s| s.payload_len())
            .collect();
        assert_eq!(lens, vec![8, 24]);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::seg::TcpFlags;
    use bytes::Bytes;
    use dvelm_net::Ip;
    use dvelm_sim::Jiffies;
    use proptest::prelude::*;

    proptest! {
        /// Whatever order (and however duplicated) packets arrive in, the
        /// drained queue is strictly ordered by sequence number with no
        /// duplicates — the property re-injection relies on.
        #[test]
        fn drain_is_sorted_and_deduped(
            seqs in proptest::collection::vec((0u32..10_000, 1usize..64), 1..100),
        ) {
            let remote = SockAddr::new(Ip::new(10, 0, 0, 3), 3306);
            let local = SockAddr::new(Ip::new(10, 0, 0, 1), 5000);
            let key = CaptureKey::connected(remote, local.port);
            let mut t = CaptureTable::new();
            t.enable(key, SimTime::ZERO);
            for (seq, len) in &seqs {
                let seg = Segment::tcp(
                    remote,
                    local,
                    TcpFlags::ACK,
                    *seq,
                    0,
                    65535,
                    Jiffies(0),
                    Jiffies(0),
                    Bytes::from(vec![0u8; *len]),
                );
                prop_assert!(t.try_capture(&seg));
            }
            let drained = t.disable_and_drain(&key);
            let out: Vec<(u32, usize)> = drained
                .iter()
                .map(|s| (s.tcp_seq().unwrap(), s.payload_len()))
                .collect();
            let mut expect: Vec<(u32, usize)> = seqs.clone();
            expect.sort_unstable();
            expect.dedup();
            prop_assert_eq!(out, expect);
        }
    }
}
