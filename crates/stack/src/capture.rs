//! Incoming-packet-loss prevention: the capture table (§III-B, §V-B).
//!
//! Before a socket is disabled on the source node, the *destination* node
//! enables capturing for the connection — keyed by remote IP, remote port and
//! local port, exactly the triple the paper transfers. While the socket is in
//! transit, the broadcast router still delivers the client's packets to the
//! destination node, where the `LOCAL_IN` hook steals and queues them. TCP
//! sequence numbers deduplicate retransmitted packets ("stores duplicated
//! packets only once"). After the socket is restored, the queue is drained in
//! sequence order and each packet is re-submitted to the stack via the
//! equivalent of netfilter's `okfn()`.

use crate::seg::{Segment, Transport};
use dvelm_net::{Port, SockAddr};
use dvelm_sim::SimTime;
use std::collections::{BTreeMap, HashMap};

/// What a capture entry matches: the migrating socket's local port plus, for
/// connected (TCP) sockets, the remote endpoint. A UDP server socket talks to
/// many remotes, so its entry matches on local port alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CaptureKey {
    /// Local port of the migrating socket.
    pub local_port: Port,
    /// Remote endpoint; `None` matches any remote (UDP server sockets).
    pub remote: Option<SockAddr>,
}

impl CaptureKey {
    /// Key for a connected socket (the paper's TCP triple).
    pub fn connected(remote: SockAddr, local_port: Port) -> CaptureKey {
        CaptureKey {
            local_port,
            remote: Some(remote),
        }
    }

    /// Key for an unconnected (server) socket: any remote.
    pub fn any_remote(local_port: Port) -> CaptureKey {
        CaptureKey {
            local_port,
            remote: None,
        }
    }
}

/// One enabled capture, with its queued packets.
#[derive(Debug, Clone)]
struct CaptureEntry {
    /// TCP packets keyed by (seq, len) — the dedup the hook performs.
    tcp_queue: BTreeMap<(u32, u32), Segment>,
    /// UDP packets in arrival order (no sequence numbers to dedup on).
    udp_queue: Vec<Segment>,
    enabled_at: SimTime,
    /// Packets discarded as duplicates.
    duplicates: u64,
}

/// Counters for tests and reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaptureStats {
    pub captured: u64,
    pub duplicates: u64,
    pub reinjected: u64,
    /// Enable attempts refused by an armed failure (fault injection).
    pub install_failures: u64,
}

/// The per-host capture table consulted by the `LOCAL_IN` hook.
#[derive(Debug, Default)]
pub struct CaptureTable {
    entries: HashMap<CaptureKey, CaptureEntry>,
    stats: CaptureStats,
    /// Fault injection: the next this many [`try_enable`](Self::try_enable)
    /// calls fail (a hook registration the kernel refused).
    armed_failures: u32,
}

impl CaptureTable {
    /// An empty table.
    pub fn new() -> CaptureTable {
        CaptureTable::default()
    }

    /// Enable capturing for `key`. Idempotent: re-enabling keeps already
    /// captured packets.
    pub fn enable(&mut self, key: CaptureKey, now: SimTime) {
        self.entries.entry(key).or_insert(CaptureEntry {
            tcp_queue: BTreeMap::new(),
            udp_queue: Vec::new(),
            enabled_at: now,
            duplicates: 0,
        });
    }

    /// Fallible [`enable`](Self::enable): fails (returning `false`) while
    /// armed failures remain. The infallible `enable` ignores arming, so
    /// existing callers are unaffected.
    pub fn try_enable(&mut self, key: CaptureKey, now: SimTime) -> bool {
        if self.armed_failures > 0 {
            self.armed_failures -= 1;
            self.stats.install_failures += 1;
            return false;
        }
        self.enable(key, now);
        true
    }

    /// Fault injection: make the next `n` [`try_enable`](Self::try_enable)
    /// calls fail.
    pub fn arm_enable_failures(&mut self, n: u32) {
        self.armed_failures = n;
    }

    /// Number of enabled entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are enabled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether capturing is enabled for `key`.
    pub fn is_enabled(&self, key: &CaptureKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Packets currently queued under `key`.
    pub fn queued(&self, key: &CaptureKey) -> usize {
        self.entries
            .get(key)
            .map(|e| e.tcp_queue.len() + e.udp_queue.len())
            .unwrap_or(0)
    }

    /// Hook function: if the segment matches an enabled entry, steal it.
    /// Returns `true` when stolen.
    pub fn try_capture(&mut self, seg: &Segment) -> bool {
        let connected = CaptureKey::connected(seg.src, seg.dst.port);
        let wildcard = CaptureKey::any_remote(seg.dst.port);
        let entry = match self.entries.get_mut(&connected) {
            Some(e) => e,
            None => match self.entries.get_mut(&wildcard) {
                Some(e) => e,
                None => return false,
            },
        };
        match &seg.transport {
            Transport::Tcp { seq, payload, .. } => {
                let dedup_key = (*seq, payload.len() as u32);
                if let std::collections::btree_map::Entry::Vacant(e) =
                    entry.tcp_queue.entry(dedup_key)
                {
                    e.insert(seg.clone());
                    self.stats.captured += 1;
                } else {
                    entry.duplicates += 1;
                    self.stats.duplicates += 1;
                }
            }
            Transport::Udp { .. } => {
                entry.udp_queue.push(seg.clone());
                self.stats.captured += 1;
            }
        }
        true
    }

    /// Disable the entry and return its queued packets in reinjection order
    /// (TCP in sequence order, then UDP in arrival order).
    pub fn disable_and_drain(&mut self, key: &CaptureKey) -> Vec<Segment> {
        let Some(entry) = self.entries.remove(key) else {
            return Vec::new();
        };
        let mut out: Vec<Segment> = entry.tcp_queue.into_values().collect();
        out.extend(entry.udp_queue);
        self.stats.reinjected += out.len() as u64;
        out
    }

    /// When the entry was enabled (for diagnostics).
    pub fn enabled_at(&self, key: &CaptureKey) -> Option<SimTime> {
        self.entries.get(key).map(|e| e.enabled_at)
    }

    /// Aggregate counters.
    pub fn stats(&self) -> CaptureStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seg::TcpFlags;
    use bytes::Bytes;
    use dvelm_net::Ip;
    use dvelm_sim::Jiffies;

    fn sa(last: u8, port: u16) -> SockAddr {
        SockAddr::new(Ip::new(10, 0, 0, last), port)
    }

    fn tcp_seg(seq: u32, len: usize) -> Segment {
        Segment::tcp(
            sa(3, 3306),
            sa(1, 5000),
            TcpFlags::ACK,
            seq,
            0,
            65535,
            Jiffies(0),
            Jiffies(0),
            Bytes::from(vec![0u8; len]),
        )
    }

    #[test]
    fn capture_matches_triple() {
        let mut t = CaptureTable::new();
        t.enable(
            CaptureKey::connected(sa(3, 3306), Port(5000)),
            SimTime::ZERO,
        );
        assert!(t.try_capture(&tcp_seg(100, 10)));
        // Different remote port: no match.
        let mut other = tcp_seg(100, 10);
        other.src = sa(3, 9999);
        assert!(!t.try_capture(&other));
        // Different local port: no match.
        let mut other = tcp_seg(100, 10);
        other.dst = sa(1, 6000);
        assert!(!t.try_capture(&other));
    }

    #[test]
    fn duplicates_stored_once() {
        let mut t = CaptureTable::new();
        let key = CaptureKey::connected(sa(3, 3306), Port(5000));
        t.enable(key, SimTime::ZERO);
        assert!(t.try_capture(&tcp_seg(100, 10)));
        assert!(t.try_capture(&tcp_seg(100, 10)), "dup is still stolen");
        assert_eq!(t.queued(&key), 1, "but stored once");
        assert_eq!(t.stats().duplicates, 1);
    }

    #[test]
    fn drain_is_in_sequence_order() {
        let mut t = CaptureTable::new();
        let key = CaptureKey::connected(sa(3, 3306), Port(5000));
        t.enable(key, SimTime::ZERO);
        t.try_capture(&tcp_seg(300, 10));
        t.try_capture(&tcp_seg(100, 10));
        t.try_capture(&tcp_seg(200, 10));
        let drained = t.disable_and_drain(&key);
        let seqs: Vec<u32> = drained.iter().map(|s| s.tcp_seq().unwrap()).collect();
        assert_eq!(seqs, vec![100, 200, 300]);
        assert!(!t.is_enabled(&key), "drain disables");
        assert_eq!(t.stats().reinjected, 3);
    }

    #[test]
    fn wildcard_matches_any_remote_udp() {
        let mut t = CaptureTable::new();
        let key = CaptureKey::any_remote(Port(27960));
        t.enable(key, SimTime::ZERO);
        let a = Segment::udp(sa(8, 1111), sa(1, 27960), Bytes::from_static(b"a"));
        let b = Segment::udp(sa(9, 2222), sa(1, 27960), Bytes::from_static(b"b"));
        assert!(t.try_capture(&a));
        assert!(t.try_capture(&b));
        assert_eq!(t.queued(&key), 2);
        let drained = t.disable_and_drain(&key);
        assert_eq!(drained.len(), 2);
        // UDP drains in arrival order.
        assert_eq!(drained[0].src, sa(8, 1111));
    }

    #[test]
    fn connected_entry_takes_precedence_over_wildcard() {
        let mut t = CaptureTable::new();
        let conn = CaptureKey::connected(sa(3, 3306), Port(5000));
        let wild = CaptureKey::any_remote(Port(5000));
        t.enable(conn, SimTime::ZERO);
        t.enable(wild, SimTime::ZERO);
        t.try_capture(&tcp_seg(1, 1));
        assert_eq!(t.queued(&conn), 1);
        assert_eq!(t.queued(&wild), 0);
    }

    #[test]
    fn drain_unknown_key_is_empty() {
        let mut t = CaptureTable::new();
        assert!(t
            .disable_and_drain(&CaptureKey::any_remote(Port(1)))
            .is_empty());
    }

    #[test]
    fn enable_is_idempotent_and_keeps_packets() {
        let mut t = CaptureTable::new();
        let key = CaptureKey::connected(sa(3, 3306), Port(5000));
        t.enable(key, SimTime::ZERO);
        t.try_capture(&tcp_seg(7, 3));
        t.enable(key, SimTime::from_millis(5));
        assert_eq!(t.queued(&key), 1);
        assert_eq!(t.enabled_at(&key), Some(SimTime::ZERO));
    }

    #[test]
    fn fault_armed_enable_failures_then_recover() {
        let mut t = CaptureTable::new();
        let key = CaptureKey::connected(sa(3, 3306), Port(5000));
        t.arm_enable_failures(2);
        assert!(!t.try_enable(key, SimTime::ZERO));
        assert!(!t.try_enable(key, SimTime::ZERO));
        assert!(t.try_enable(key, SimTime::ZERO), "arming is consumed");
        assert!(t.is_enabled(&key));
        assert_eq!(t.stats().install_failures, 2);
        // The infallible path never fails, armed or not.
        t.arm_enable_failures(1);
        t.enable(CaptureKey::any_remote(Port(80)), SimTime::ZERO);
        assert!(t.is_enabled(&CaptureKey::any_remote(Port(80))));
    }

    #[test]
    fn fault_burst_retransmissions_dedup_and_drain_in_order() {
        // A correlated loss burst during the freeze window makes the client
        // retransmit the same flight several times, interleaved with new
        // data once the burst lifts. Every arrival is stolen, duplicates
        // are stored once, and the drain is still strictly in-order — the
        // property reinjection after an abort or a restore relies on.
        let mut t = CaptureTable::new();
        let key = CaptureKey::connected(sa(3, 3306), Port(5000));
        t.enable(key, SimTime::ZERO);
        // Three identical retransmissions of a 3-segment flight...
        for _ in 0..3 {
            for seq in [100, 110, 120] {
                assert!(t.try_capture(&tcp_seg(seq, 10)));
            }
        }
        // ...then the burst lifts and new data arrives out of order.
        t.try_capture(&tcp_seg(140, 10));
        t.try_capture(&tcp_seg(130, 10));
        assert_eq!(t.queued(&key), 5, "flight stored once + 2 new segments");
        assert_eq!(t.stats().duplicates, 6);
        let seqs: Vec<u32> = t
            .disable_and_drain(&key)
            .iter()
            .map(|s| s.tcp_seq().unwrap())
            .collect();
        assert_eq!(seqs, vec![100, 110, 120, 130, 140]);
    }

    #[test]
    fn dedup_still_exact_at_seq_wraparound() {
        // A retransmission storm straddling the u32 sequence-number
        // wraparound: the (seq, len) dedup key must not confuse pre-wrap
        // and post-wrap segments, and duplicates on either side of the
        // boundary are still stored once.
        let mut t = CaptureTable::new();
        let key = CaptureKey::connected(sa(3, 3306), Port(5000));
        t.enable(key, SimTime::ZERO);
        for seq in [u32::MAX - 1, u32::MAX, 0, 1] {
            assert!(t.try_capture(&tcp_seg(seq, 10)));
            assert!(t.try_capture(&tcp_seg(seq, 10)), "dup at seq {seq} stolen");
        }
        assert_eq!(t.queued(&key), 4, "one entry per distinct seq");
        assert_eq!(t.stats().duplicates, 4);
    }

    #[test]
    fn drain_order_at_wraparound_is_numeric_not_modular() {
        // The queue is keyed by raw (seq, len): post-wrap segments (0, 1)
        // drain *before* pre-wrap ones (MAX-1, MAX). That is fine for
        // re-injection — the receiving TCP reorders by sequence arithmetic
        // — but it is a documented property of the capture queue, not
        // modular 2^31 ordering.
        let mut t = CaptureTable::new();
        let key = CaptureKey::connected(sa(3, 3306), Port(5000));
        t.enable(key, SimTime::ZERO);
        for seq in [u32::MAX, 1, u32::MAX - 1, 0] {
            t.try_capture(&tcp_seg(seq, 10));
        }
        let seqs: Vec<u32> = t
            .disable_and_drain(&key)
            .iter()
            .map(|s| s.tcp_seq().unwrap())
            .collect();
        assert_eq!(seqs, vec![0, 1, u32::MAX - 1, u32::MAX]);
    }

    #[test]
    fn same_seq_different_len_are_distinct_at_wraparound() {
        // A shrunk retransmission at seq u32::MAX (different payload
        // length) is a distinct queue entry, and the shorter one drains
        // first within the same sequence number.
        let mut t = CaptureTable::new();
        let key = CaptureKey::connected(sa(3, 3306), Port(5000));
        t.enable(key, SimTime::ZERO);
        t.try_capture(&tcp_seg(u32::MAX, 24));
        t.try_capture(&tcp_seg(u32::MAX, 8));
        assert_eq!(t.queued(&key), 2);
        assert_eq!(t.stats().duplicates, 0);
        let lens: Vec<usize> = t
            .disable_and_drain(&key)
            .iter()
            .map(|s| s.payload_len())
            .collect();
        assert_eq!(lens, vec![8, 24]);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::seg::TcpFlags;
    use bytes::Bytes;
    use dvelm_net::Ip;
    use dvelm_sim::Jiffies;
    use proptest::prelude::*;

    proptest! {
        /// Whatever order (and however duplicated) packets arrive in, the
        /// drained queue is strictly ordered by sequence number with no
        /// duplicates — the property re-injection relies on.
        #[test]
        fn drain_is_sorted_and_deduped(
            seqs in proptest::collection::vec((0u32..10_000, 1usize..64), 1..100),
        ) {
            let remote = SockAddr::new(Ip::new(10, 0, 0, 3), 3306);
            let local = SockAddr::new(Ip::new(10, 0, 0, 1), 5000);
            let key = CaptureKey::connected(remote, local.port);
            let mut t = CaptureTable::new();
            t.enable(key, SimTime::ZERO);
            for (seq, len) in &seqs {
                let seg = Segment::tcp(
                    remote,
                    local,
                    TcpFlags::ACK,
                    *seq,
                    0,
                    65535,
                    Jiffies(0),
                    Jiffies(0),
                    Bytes::from(vec![0u8; *len]),
                );
                prop_assert!(t.try_capture(&seg));
            }
            let drained = t.disable_and_drain(&key);
            let out: Vec<(u32, usize)> = drained
                .iter()
                .map(|s| (s.tcp_seq().unwrap(), s.payload_len()))
                .collect();
            let mut expect: Vec<(u32, usize)> = seqs.clone();
            expect.sort_unstable();
            expect.dedup();
            prop_assert_eq!(out, expect);
        }
    }
}
