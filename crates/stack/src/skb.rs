//! Socket buffers (skbs): queued data with the metadata socket migration
//! must preserve.
//!
//! Every skb carries a *mutation stamp* — a host-wide monotone counter
//! assigned when the skb is queued. The incremental socket tracker
//! (`dvelm-migrate`) uses stamps to compute exactly which buffers appeared
//! since the last precopy iteration, which is what shrinks the freeze-phase
//! payload from megabytes to kilobytes (Fig. 5c).

use bytes::Bytes;
use dvelm_sim::{Jiffies, SimTime};

/// Fixed per-skb checkpoint overhead (control block fields that travel with
/// the buffer: sequence, length, timestamps, flags) in bytes.
pub const SKB_RECORD_OVERHEAD: u64 = 68;

/// A queued socket buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Skb {
    /// First sequence number covered (TCP; 0 for UDP).
    pub seq: u32,
    /// Payload.
    pub payload: Bytes,
    /// Sender jiffies timestamp recorded when the buffer was created
    /// (`skb->tstamp` analogue) — shifted on migration.
    pub ts: Jiffies,
    /// Simulated instant the buffer was queued.
    pub queued_at: SimTime,
    /// Host-wide monotone mutation stamp (see module docs).
    pub stamp: u64,
    /// Number of (re)transmissions so far (write-queue skbs).
    pub retrans: u32,
}

impl Skb {
    /// A new buffer.
    pub fn new(seq: u32, payload: Bytes, ts: Jiffies, queued_at: SimTime, stamp: u64) -> Skb {
        Skb {
            seq,
            payload,
            ts,
            queued_at,
            stamp,
            retrans: 0,
        }
    }

    /// Sequence number one past the last payload byte.
    pub fn end_seq(&self) -> u32 {
        self.seq.wrapping_add(self.payload.len() as u32)
    }

    /// Bytes this buffer contributes to a checkpoint record.
    pub fn record_len(&self) -> u64 {
        SKB_RECORD_OVERHEAD + self.payload.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skb(seq: u32, len: usize, stamp: u64) -> Skb {
        Skb::new(
            seq,
            Bytes::from(vec![0u8; len]),
            Jiffies(0),
            SimTime::ZERO,
            stamp,
        )
    }

    #[test]
    fn end_seq_wraps() {
        let s = skb(u32::MAX - 1, 4, 0);
        assert_eq!(s.end_seq(), 2);
    }

    #[test]
    fn record_len_includes_overhead() {
        assert_eq!(skb(0, 256, 0).record_len(), SKB_RECORD_OVERHEAD + 256);
        assert_eq!(skb(0, 0, 0).record_len(), SKB_RECORD_OVERHEAD);
    }

    #[test]
    fn stamps_are_preserved() {
        assert_eq!(skb(0, 1, 42).stamp, 42);
    }
}
