//! The TCP socket state machine.
//!
//! Models the parts of Linux TCP that socket migration must extract, ship and
//! restore (§V-C1): connection identifiers, sequence/ack state, the write /
//! receive / out-of-order queues plus the backlog and prequeue, the
//! retransmission timer, and jiffies-based timestamps feeding RTT estimation
//! and congestion control.
//!
//! The socket is a pure state machine: every entry point takes a [`TcpCtx`](crate::tcp::TcpCtx)
//! (current time, local jiffies, the host's mutation-stamp counter) and
//! returns [`TcpOut`](crate::tcp::TcpOut) effects. The host stack (`host.rs`) owns hashing,
//! netfilter traversal and timer scheduling.

use crate::seg::{seq_ge, seq_gt, seq_le, seq_lt, Segment, TcpFlags, Transport};
use crate::skb::Skb;
use bytes::Bytes;
use dvelm_net::SockAddr;
use dvelm_sim::{Jiffies, SimTime, MILLISECOND, SECOND};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Maximum segment size (payload bytes per segment).
pub const MSS: u32 = 1448;
/// Initial congestion window (IW10, bytes).
pub const INITIAL_CWND: u32 = 10 * MSS;
/// Default advertised receive window, bytes.
pub const DEFAULT_RCV_WND: u32 = 1 << 20;
/// Minimum retransmission timeout (Linux TCP_RTO_MIN), µs.
pub const RTO_MIN_US: u64 = 200 * MILLISECOND;
/// Maximum retransmission timeout (Linux TCP_RTO_MAX), µs.
pub const RTO_MAX_US: u64 = 120 * SECOND;
/// Initial RTO before any RTT sample (RFC 6298), µs.
pub const RTO_INITIAL_US: u64 = SECOND;

/// Fixed encoded size of the scalar part of a full TCP socket record
/// (the `tcp_sock` structure with its embedded inet/sock fields, plus the
/// associated `file`/`inode` records BLCR dumps per descriptor), bytes.
/// Calibrated so ~1024 connections with typical queue depths aggregate to
/// the ≈3.5 MB the paper reports in Fig. 5c.
pub const TCP_RECORD_SCALAR: u64 = 2048;
/// Encoded size of the scalar block in an incremental record, bytes.
pub const TCP_DELTA_SCALAR: u64 = 96;
/// Per-socket header of an incremental record (id, stamps, bitmap), bytes.
pub const DELTA_HEADER: u64 = 24;

/// TCP connection states (the migratable ones per §III-C are `Listen` and
/// `Established`; the close-path states exist so ordinary traffic works).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TcpState {
    Listen,
    SynSent,
    SynRcvd,
    Established,
    FinWait1,
    FinWait2,
    CloseWait,
    LastAck,
    Closing,
    TimeWait,
    Closed,
}

impl TcpState {
    /// Whether the paper's migration mechanism supports this state.
    pub fn is_migratable(self) -> bool {
        matches!(self, TcpState::Listen | TcpState::Established)
    }
}

/// Effects produced by socket entry points.
#[derive(Debug)]
pub enum TcpOut {
    /// Transmit a segment.
    Tx(Segment),
    /// The receive queue became non-empty (app should read).
    DataReadable,
    /// Three-way handshake completed.
    Established,
    /// A listening socket accepted a SYN; the host must register the child.
    SpawnChild(Box<TcpSocket>),
    /// The peer closed its direction (FIN consumed).
    PeerFin,
    /// (Re)arm the retransmission timer for this deadline.
    ArmTimer(SimTime),
    /// Cancel the retransmission timer.
    StopTimer,
    /// The connection reached `Closed`.
    Closed,
}

/// Context handed to every socket entry point.
pub struct TcpCtx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// This node's current jiffies.
    pub jiffies: Jiffies,
    /// The host's monotone mutation-stamp counter.
    pub stamp: &'a mut u64,
}

impl TcpCtx<'_> {
    fn next_stamp(&mut self) -> u64 {
        *self.stamp += 1;
        *self.stamp
    }
}

/// A TCP socket.
#[derive(Debug, Clone)]
pub struct TcpSocket {
    /// Bound local endpoint.
    pub local: SockAddr,
    /// Peer endpoint (`None` while listening).
    pub remote: Option<SockAddr>,
    /// Connection state.
    pub state: TcpState,

    // --- send sequence space ---
    iss: u32,
    snd_una: u32,
    snd_nxt: u32,
    /// Peer-advertised window.
    snd_wnd: u32,
    fin_sent: bool,

    // --- receive sequence space ---
    irs: u32,
    rcv_nxt: u32,
    rcv_wnd: u32,
    fin_rcvd: bool,

    // --- congestion control ---
    cwnd: u32,
    ssthresh: u32,

    // --- RTT estimation (µs) ---
    srtt_us: u64,
    rttvar_us: u64,
    rto_us: u64,

    // --- timestamps ---
    /// Most recent peer ts_val (peer's jiffies domain; needs no shift).
    ts_recent: Jiffies,
    /// Offset added to local jiffies when generating ts_val and interpreting
    /// echoes (Linux `tsoffset`); migration adds the source/destination
    /// jiffies delta here so timestamps continue seamlessly (§V-C1).
    ts_offset: i64,

    // --- the five queues ---
    /// Outgoing: unacked (front) + not-yet-sent (tail).
    write_queue: VecDeque<Skb>,
    /// Index of the first never-transmitted skb in `write_queue`.
    next_unsent: usize,
    /// In-order received, not yet read by the application.
    recv_queue: VecDeque<Skb>,
    /// Out-of-order arrivals keyed by sequence number.
    ofo_queue: BTreeMap<u32, Skb>,
    /// Arrivals while the socket is user-locked.
    backlog: VecDeque<Segment>,
    /// Fast-path receive queue (arrivals while a reader is blocked).
    prequeue: VecDeque<Segment>,

    /// Application currently holds the socket lock.
    pub user_locked: bool,
    /// A reader is blocked in receive (fast path active).
    pub fast_path_reader: bool,

    // --- retransmission timer ---
    rto_deadline: Option<SimTime>,
    /// Bumped whenever the timer is cleared; stale fires are ignored.
    pub timer_gen: u64,

    /// Stamp of the last mutation to any part of this socket.
    last_stamp: u64,
    /// Stamp of the last scalar (non-queue) state change.
    scalar_stamp: u64,
}

impl TcpSocket {
    fn base(local: SockAddr, state: TcpState) -> TcpSocket {
        TcpSocket {
            local,
            remote: None,
            state,
            iss: 0,
            snd_una: 0,
            snd_nxt: 0,
            snd_wnd: DEFAULT_RCV_WND,
            fin_sent: false,
            irs: 0,
            rcv_nxt: 0,
            rcv_wnd: DEFAULT_RCV_WND,
            fin_rcvd: false,
            cwnd: INITIAL_CWND,
            ssthresh: 8 * DEFAULT_RCV_WND,
            srtt_us: 0,
            rttvar_us: 0,
            rto_us: RTO_INITIAL_US,
            ts_recent: Jiffies(0),
            ts_offset: 0,
            write_queue: VecDeque::new(),
            next_unsent: 0,
            recv_queue: VecDeque::new(),
            ofo_queue: BTreeMap::new(),
            backlog: VecDeque::new(),
            prequeue: VecDeque::new(),
            user_locked: false,
            fast_path_reader: false,
            rto_deadline: None,
            timer_gen: 0,
            last_stamp: 0,
            scalar_stamp: 0,
        }
    }

    /// A passive (listening) socket bound to `local`.
    pub fn listen(local: SockAddr) -> TcpSocket {
        TcpSocket::base(local, TcpState::Listen)
    }

    /// Active open: create the socket and emit the SYN.
    pub fn connect(
        local: SockAddr,
        remote: SockAddr,
        iss: u32,
        ctx: &mut TcpCtx<'_>,
    ) -> (TcpSocket, Vec<TcpOut>) {
        let mut s = TcpSocket::base(local, TcpState::SynSent);
        s.remote = Some(remote);
        s.iss = iss;
        s.snd_una = iss;
        s.snd_nxt = iss.wrapping_add(1);
        s.touch_scalar(ctx);
        let syn = s.make_segment(TcpFlags::SYN, iss, 0, Bytes::new(), ctx);
        let deadline = ctx.now + s.rto_us;
        s.rto_deadline = Some(deadline);
        (s, vec![TcpOut::Tx(syn), TcpOut::ArmTimer(deadline)])
    }

    /// Passive open: a listener received a SYN; build the child socket (in
    /// `SynRcvd`) and its SYN-ACK.
    pub fn passive_open(
        listener_local: SockAddr,
        peer: SockAddr,
        peer_seq: u32,
        peer_ts_val: Jiffies,
        iss: u32,
        ctx: &mut TcpCtx<'_>,
    ) -> (TcpSocket, Vec<TcpOut>) {
        let mut s = TcpSocket::base(listener_local, TcpState::SynRcvd);
        s.remote = Some(peer);
        s.iss = iss;
        s.snd_una = iss;
        s.snd_nxt = iss.wrapping_add(1);
        s.irs = peer_seq;
        s.rcv_nxt = peer_seq.wrapping_add(1);
        s.ts_recent = peer_ts_val;
        s.touch_scalar(ctx);
        let syn_ack = s.make_segment(TcpFlags::SYN_ACK, iss, s.rcv_nxt, Bytes::new(), ctx);
        let deadline = ctx.now + s.rto_us;
        s.rto_deadline = Some(deadline);
        (s, vec![TcpOut::Tx(syn_ack), TcpOut::ArmTimer(deadline)])
    }

    // ------------------------------------------------------------------
    // accessors used by migration and tests
    // ------------------------------------------------------------------

    /// Stamp of the most recent mutation (drives incremental checkpointing).
    pub fn mutation_stamp(&self) -> u64 {
        self.last_stamp
    }

    /// Current smoothed RTT estimate in microseconds (0 before any sample).
    pub fn srtt_us(&self) -> u64 {
        self.srtt_us
    }

    /// Current retransmission timeout in microseconds.
    pub fn rto_us(&self) -> u64 {
        self.rto_us
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u32 {
        self.cwnd
    }

    /// Next sequence number to send.
    pub fn snd_nxt(&self) -> u32 {
        self.snd_nxt
    }

    /// Oldest unacknowledged sequence number.
    pub fn snd_una(&self) -> u32 {
        self.snd_una
    }

    /// Next expected receive sequence number.
    pub fn rcv_nxt(&self) -> u32 {
        self.rcv_nxt
    }

    /// Unacknowledged bytes in flight.
    pub fn flight(&self) -> u32 {
        self.snd_nxt.wrapping_sub(self.snd_una)
    }

    /// Whether the retransmission timer is armed.
    pub fn timer_armed(&self) -> bool {
        self.rto_deadline.is_some()
    }

    /// Deadline of the armed retransmission timer.
    pub fn timer_deadline(&self) -> Option<SimTime> {
        self.rto_deadline
    }

    /// Lengths of (write, recv, out-of-order, backlog, prequeue) queues.
    pub fn queue_lens(&self) -> (usize, usize, usize, usize, usize) {
        (
            self.write_queue.len(),
            self.recv_queue.len(),
            self.ofo_queue.len(),
            self.backlog.len(),
            self.prequeue.len(),
        )
    }

    fn touch_scalar(&mut self, ctx: &mut TcpCtx<'_>) {
        let s = ctx.next_stamp();
        self.scalar_stamp = s;
        self.last_stamp = s;
    }

    fn effective_jiffies(&self, ctx: &TcpCtx<'_>) -> Jiffies {
        ctx.jiffies.shifted(self.ts_offset)
    }

    fn make_segment(
        &self,
        flags: TcpFlags,
        seq: u32,
        ack: u32,
        payload: Bytes,
        ctx: &TcpCtx<'_>,
    ) -> Segment {
        Segment::tcp(
            self.local,
            self.remote.expect("segment on unconnected socket"),
            flags,
            seq,
            ack,
            self.rcv_wnd,
            self.effective_jiffies(ctx),
            self.ts_recent,
            payload,
        )
    }

    fn make_ack(&self, ctx: &TcpCtx<'_>) -> Segment {
        self.make_segment(TcpFlags::ACK, self.snd_nxt, self.rcv_nxt, Bytes::new(), ctx)
    }

    // ------------------------------------------------------------------
    // sending
    // ------------------------------------------------------------------

    /// Queue application data for transmission, segmenting at MSS, and push
    /// whatever the congestion/receive windows allow.
    pub fn send(&mut self, data: Bytes, ctx: &mut TcpCtx<'_>) -> Vec<TcpOut> {
        assert!(
            matches!(self.state, TcpState::Established | TcpState::CloseWait),
            "send() in state {:?}",
            self.state
        );
        let mut off = 0usize;
        let mut queue_seq = self
            .write_queue
            .back()
            .map(|s| s.end_seq())
            .unwrap_or(self.snd_nxt);
        while off < data.len() {
            let take = (data.len() - off).min(MSS as usize);
            let stamp = ctx.next_stamp();
            let skb = Skb::new(
                queue_seq,
                data.slice(off..off + take),
                self.effective_jiffies(ctx),
                ctx.now,
                stamp,
            );
            queue_seq = skb.end_seq();
            self.write_queue.push_back(skb);
            self.last_stamp = stamp;
            off += take;
        }
        self.push_pending(ctx)
    }

    /// Transmit queued-but-unsent data within `min(cwnd, snd_wnd)`.
    fn push_pending(&mut self, ctx: &mut TcpCtx<'_>) -> Vec<TcpOut> {
        let mut out = Vec::new();
        let limit = self.cwnd.min(self.snd_wnd);
        while self.next_unsent < self.write_queue.len() {
            let skb_len = self.write_queue[self.next_unsent].payload.len() as u32;
            if self.flight() + skb_len > limit && self.flight() > 0 {
                break;
            }
            let (seq, payload) = {
                let skb = &mut self.write_queue[self.next_unsent];
                skb.retrans = 0;
                (skb.seq, skb.payload.clone())
            };
            debug_assert_eq!(seq, self.snd_nxt, "write queue out of sync with snd_nxt");
            let seg = self.make_segment(TcpFlags::ACK, seq, self.rcv_nxt, payload, ctx);
            self.snd_nxt = self.snd_nxt.wrapping_add(skb_len);
            self.next_unsent += 1;
            out.push(TcpOut::Tx(seg));
        }
        if !out.is_empty() {
            self.touch_scalar(ctx);
        }
        if self.flight() > 0 && self.rto_deadline.is_none() {
            let deadline = ctx.now + self.rto_us;
            self.rto_deadline = Some(deadline);
            out.push(TcpOut::ArmTimer(deadline));
        }
        out
    }

    /// Application close: send FIN once all queued data is out.
    /// (Simplified: FIN is emitted immediately after pending data; data still
    /// in the write queue keeps its retransmission protection.)
    pub fn close(&mut self, ctx: &mut TcpCtx<'_>) -> Vec<TcpOut> {
        let mut out = Vec::new();
        match self.state {
            TcpState::Established => self.state = TcpState::FinWait1,
            TcpState::CloseWait => self.state = TcpState::LastAck,
            _ => return out,
        }
        debug_assert_eq!(
            self.next_unsent,
            self.write_queue.len(),
            "close with unsent data is not supported; flush first"
        );
        self.fin_sent = true;
        let fin = self.make_segment(
            TcpFlags::FIN_ACK,
            self.snd_nxt,
            self.rcv_nxt,
            Bytes::new(),
            ctx,
        );
        self.snd_nxt = self.snd_nxt.wrapping_add(1);
        self.touch_scalar(ctx);
        out.push(TcpOut::Tx(fin));
        if self.rto_deadline.is_none() {
            let deadline = ctx.now + self.rto_us;
            self.rto_deadline = Some(deadline);
            out.push(TcpOut::ArmTimer(deadline));
        }
        out
    }

    // ------------------------------------------------------------------
    // receiving
    // ------------------------------------------------------------------

    /// Main receive entry point. Honors the user lock (backlog) and the
    /// fast path (prequeue), as in §V-C1: a segment arriving while the
    /// application holds the lock is parked, not processed.
    pub fn on_segment(&mut self, seg: Segment, ctx: &mut TcpCtx<'_>) -> Vec<TcpOut> {
        if self.user_locked {
            self.backlog.push_back(seg);
            self.last_stamp = ctx.next_stamp();
            return Vec::new();
        }
        if self.fast_path_reader && matches!(self.state, TcpState::Established) {
            self.prequeue.push_back(seg);
            self.last_stamp = ctx.next_stamp();
            return Vec::new();
        }
        self.process_segment(seg, ctx)
    }

    /// Process segments parked on the backlog (called when the user lock is
    /// released) and the prequeue (called when the blocked reader resumes).
    pub fn process_parked(&mut self, ctx: &mut TcpCtx<'_>) -> Vec<TcpOut> {
        let mut out = Vec::new();
        let parked: Vec<Segment> = self
            .prequeue
            .drain(..)
            .chain(self.backlog.drain(..))
            .collect();
        if !parked.is_empty() {
            self.last_stamp = ctx.next_stamp();
        }
        for seg in parked {
            out.extend(self.process_segment(seg, ctx));
        }
        out
    }

    fn process_segment(&mut self, seg: Segment, ctx: &mut TcpCtx<'_>) -> Vec<TcpOut> {
        let Transport::Tcp {
            flags,
            seq,
            ack,
            wnd,
            ts_val,
            ts_ecr,
            payload,
        } = seg.transport
        else {
            return Vec::new();
        };
        let mut out = Vec::new();

        if flags.rst {
            self.state = TcpState::Closed;
            self.clear_timer();
            self.touch_scalar(ctx);
            out.push(TcpOut::StopTimer);
            out.push(TcpOut::Closed);
            return out;
        }

        match self.state {
            TcpState::SynSent => {
                if flags.syn && flags.ack && ack == self.snd_nxt {
                    self.irs = seq;
                    self.rcv_nxt = seq.wrapping_add(1);
                    self.snd_una = ack;
                    self.snd_wnd = wnd;
                    self.ts_recent = ts_val;
                    self.state = TcpState::Established;
                    self.clear_timer();
                    self.touch_scalar(ctx);
                    out.push(TcpOut::StopTimer);
                    out.push(TcpOut::Tx(self.make_ack(ctx)));
                    out.push(TcpOut::Established);
                }
                return out;
            }
            TcpState::SynRcvd => {
                if flags.ack && seq_ge(ack, self.snd_nxt) {
                    self.snd_una = ack;
                    self.snd_wnd = wnd;
                    self.state = TcpState::Established;
                    self.clear_timer();
                    self.touch_scalar(ctx);
                    out.push(TcpOut::StopTimer);
                    out.push(TcpOut::Established);
                    // fall through: the handshake ACK may carry data
                } else {
                    return out;
                }
            }
            TcpState::Listen | TcpState::Closed | TcpState::TimeWait => return out,
            _ => {}
        }

        // Timestamp bookkeeping (PAWS-style recency, simplified).
        if ts_val.ticks() >= self.ts_recent.ticks() {
            self.ts_recent = ts_val;
        }

        // --- ACK processing ---
        if flags.ack && seq_gt(ack, self.snd_una) {
            self.handle_ack(ack, wnd, ts_ecr, ctx, &mut out);
        } else if flags.ack {
            self.snd_wnd = wnd;
        }

        // --- payload processing ---
        if !payload.is_empty() {
            self.handle_payload(seq, payload, ts_val, ctx, &mut out);
        }

        // --- FIN processing ---
        if flags.fin {
            // The FIN occupies the sequence slot right after its payload; it
            // is consumable only once everything before it has arrived.
            if seq_le(seq, self.rcv_nxt) && !self.fin_rcvd {
                self.fin_rcvd = true;
                self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
                self.touch_scalar(ctx);
                out.push(TcpOut::PeerFin);
                out.push(TcpOut::Tx(self.make_ack(ctx)));
                match self.state {
                    TcpState::Established => self.state = TcpState::CloseWait,
                    TcpState::FinWait1 => self.state = TcpState::Closing,
                    TcpState::FinWait2 => {
                        self.state = TcpState::TimeWait;
                        out.push(TcpOut::Closed);
                    }
                    _ => {}
                }
            }
        }

        // Close-path ACK transitions.
        if self.fin_sent && seq_ge(self.snd_una, self.snd_nxt) {
            match self.state {
                TcpState::FinWait1 => {
                    self.state = TcpState::FinWait2;
                    self.touch_scalar(ctx);
                }
                TcpState::Closing => {
                    self.state = TcpState::TimeWait;
                    self.touch_scalar(ctx);
                    out.push(TcpOut::Closed);
                }
                TcpState::LastAck => {
                    self.state = TcpState::Closed;
                    self.clear_timer();
                    self.touch_scalar(ctx);
                    out.push(TcpOut::StopTimer);
                    out.push(TcpOut::Closed);
                }
                _ => {}
            }
        }

        out
    }

    fn handle_ack(
        &mut self,
        ack: u32,
        wnd: u32,
        ts_ecr: Jiffies,
        ctx: &mut TcpCtx<'_>,
        out: &mut Vec<TcpOut>,
    ) {
        // Drop fully-acknowledged skbs from the head of the write queue.
        let mut dropped = 0usize;
        while let Some(front) = self.write_queue.front() {
            if seq_le(front.end_seq(), ack) && dropped < self.next_unsent {
                self.write_queue.pop_front();
                dropped += 1;
            } else {
                break;
            }
        }
        self.next_unsent -= dropped;
        let newly_acked = ack.wrapping_sub(self.snd_una);
        self.snd_una = ack;
        self.snd_wnd = wnd;

        // RTT sample from the timestamp echo (jiffies granularity, like the
        // kernel). A bogus echo — e.g. a pre-migration ts_val interpreted on
        // a node with different jiffies and no adjustment — produces a wild
        // sample, which is exactly the failure §V-C1 prevents.
        if ts_ecr.ticks() != 0 {
            let now_eff = self.effective_jiffies(ctx);
            let d = now_eff.ticks() as i64 - ts_ecr.ticks() as i64;
            let sample_us = if d >= 0 {
                (d as u64) * 10 * MILLISECOND
            } else {
                // Echo "from the future": a wrapped/garbage timestamp.
                RTO_MAX_US
            };
            self.rtt_sample(sample_us);
        }

        // Congestion control: slow start / congestion avoidance.
        if self.cwnd < self.ssthresh {
            self.cwnd = self.cwnd.saturating_add(newly_acked.min(MSS));
        } else {
            self.cwnd = self
                .cwnd
                .saturating_add(((MSS as u64 * MSS as u64) / self.cwnd as u64) as u32)
                .max(MSS);
        }

        self.touch_scalar(ctx);

        // Timer management: restart while data is in flight, stop otherwise.
        if self.flight() > 0 {
            let deadline = ctx.now + self.rto_us;
            self.rto_deadline = Some(deadline);
            self.timer_gen += 1;
            out.push(TcpOut::ArmTimer(deadline));
        } else if self.rto_deadline.is_some() {
            self.clear_timer();
            out.push(TcpOut::StopTimer);
        }

        // Window may have opened: push more data.
        out.extend(self.push_pending(ctx));
    }

    fn rtt_sample(&mut self, sample_us: u64) {
        let m = sample_us.max(1);
        if self.srtt_us == 0 {
            self.srtt_us = m;
            self.rttvar_us = m / 2;
        } else {
            let diff = self.srtt_us.abs_diff(m);
            self.rttvar_us = (3 * self.rttvar_us + diff) / 4;
            self.srtt_us = (7 * self.srtt_us + m) / 8;
        }
        self.rto_us = (self.srtt_us + 4 * self.rttvar_us).clamp(RTO_MIN_US, RTO_MAX_US);
    }

    fn handle_payload(
        &mut self,
        seq: u32,
        payload: Bytes,
        ts_val: Jiffies,
        ctx: &mut TcpCtx<'_>,
        out: &mut Vec<TcpOut>,
    ) {
        let end = seq.wrapping_add(payload.len() as u32);
        if seq_le(end, self.rcv_nxt) {
            // Entirely old: pure duplicate, re-ACK.
            out.push(TcpOut::Tx(self.make_ack(ctx)));
            return;
        }
        let (seq, payload) = if seq_lt(seq, self.rcv_nxt) {
            // Partial overlap: trim the stale prefix.
            let skip = self.rcv_nxt.wrapping_sub(seq) as usize;
            (self.rcv_nxt, payload.slice(skip..))
        } else {
            (seq, payload)
        };

        if seq == self.rcv_nxt {
            let was_empty = self.recv_queue.is_empty();
            let stamp = ctx.next_stamp();
            self.recv_queue
                .push_back(Skb::new(seq, payload, ts_val, ctx.now, stamp));
            self.last_stamp = stamp;
            self.rcv_nxt = end;
            // Pull any now-contiguous out-of-order segments in.
            while let Some((oseq, skb)) = self.ofo_queue.pop_first() {
                if seq_gt(oseq, self.rcv_nxt) {
                    self.ofo_queue.insert(oseq, skb);
                    break;
                }
                if seq_le(skb.end_seq(), self.rcv_nxt) {
                    continue; // entirely duplicate of data we already have
                }
                let skip = self.rcv_nxt.wrapping_sub(oseq) as usize;
                let skb_end = skb.end_seq();
                let stamp = ctx.next_stamp();
                self.recv_queue.push_back(Skb::new(
                    self.rcv_nxt,
                    skb.payload.slice(skip..),
                    skb.ts,
                    skb.queued_at,
                    stamp,
                ));
                self.last_stamp = stamp;
                self.rcv_nxt = skb_end;
            }
            self.touch_scalar(ctx);
            out.push(TcpOut::Tx(self.make_ack(ctx)));
            if was_empty && !self.recv_queue.is_empty() {
                out.push(TcpOut::DataReadable);
            }
        } else {
            // Out of order: park it (deduplicated by start seq).
            let stamp = ctx.next_stamp();
            self.ofo_queue
                .entry(seq)
                .or_insert_with(|| Skb::new(seq, payload, ts_val, ctx.now, stamp));
            self.last_stamp = stamp;
            // Duplicate ACK tells the peer what we are still missing.
            out.push(TcpOut::Tx(self.make_ack(ctx)));
        }
    }

    /// Application read: drain the in-order receive queue.
    pub fn read(&mut self, ctx: &mut TcpCtx<'_>) -> Vec<Skb> {
        if self.recv_queue.is_empty() {
            return Vec::new();
        }
        self.last_stamp = ctx.next_stamp();
        self.recv_queue.drain(..).collect()
    }

    // ------------------------------------------------------------------
    // retransmission
    // ------------------------------------------------------------------

    /// Retransmission timer fired (host verified the generation).
    pub fn on_rto(&mut self, ctx: &mut TcpCtx<'_>) -> Vec<TcpOut> {
        let mut out = Vec::new();
        self.rto_deadline = None;
        match self.state {
            TcpState::SynSent => {
                let syn = self.make_segment(TcpFlags::SYN, self.iss, 0, Bytes::new(), ctx);
                out.push(TcpOut::Tx(syn));
            }
            TcpState::SynRcvd => {
                let sa =
                    self.make_segment(TcpFlags::SYN_ACK, self.iss, self.rcv_nxt, Bytes::new(), ctx);
                out.push(TcpOut::Tx(sa));
            }
            TcpState::Closed | TcpState::Listen | TcpState::TimeWait => return out,
            _ => {
                if self.next_unsent > 0 && !self.write_queue.is_empty() {
                    // Retransmit the oldest unacked skb; multiplicative backoff.
                    let (seq, payload) = {
                        let skb = &mut self.write_queue[0];
                        skb.retrans += 1;
                        (skb.seq, skb.payload.clone())
                    };
                    self.ssthresh = (self.flight() / 2).max(2 * MSS);
                    self.cwnd = MSS;
                    let seg = self.make_segment(TcpFlags::ACK, seq, self.rcv_nxt, payload, ctx);
                    out.push(TcpOut::Tx(seg));
                } else if self.fin_sent && seq_lt(self.snd_una, self.snd_nxt) {
                    let fin = self.make_segment(
                        TcpFlags::FIN_ACK,
                        self.snd_nxt.wrapping_sub(1),
                        self.rcv_nxt,
                        Bytes::new(),
                        ctx,
                    );
                    out.push(TcpOut::Tx(fin));
                } else {
                    return out;
                }
            }
        }
        self.rto_us = (self.rto_us * 2).min(RTO_MAX_US);
        let deadline = ctx.now + self.rto_us;
        self.rto_deadline = Some(deadline);
        self.touch_scalar(ctx);
        out.push(TcpOut::ArmTimer(deadline));
        out
    }

    fn clear_timer(&mut self) {
        self.rto_deadline = None;
        self.timer_gen += 1;
    }

    // ------------------------------------------------------------------
    // migration support
    // ------------------------------------------------------------------

    /// "Disable" the socket for migration: clear the retransmission timer
    /// (the unhashing half lives in the host stack).
    pub fn quiesce_for_migration(&mut self) {
        self.clear_timer();
    }

    /// Whether the parked queues (backlog, prequeue) are empty — guaranteed
    /// by the signal-based checkpoint notification (§V-C1), but *not* by
    /// kernel-initiated checkpointing.
    pub fn parked_queues_empty(&self) -> bool {
        self.backlog.is_empty() && self.prequeue.is_empty()
    }

    /// Apply the source→destination jiffies delta after migration: shift
    /// every timestamp recorded in the source's jiffies domain (skb
    /// timestamps) and fold the delta into the timestamp offset used for
    /// future ts_val generation and echo interpretation.
    ///
    /// `delta` is `dst_jiffies_now - src_jiffies_at_checkpoint` (≈ the
    /// difference of the nodes' bases). Skipping this call reproduces the
    /// broken-RTT/RTO behaviour the paper's adjustment prevents.
    pub fn apply_jiffies_delta(&mut self, delta: i64) {
        // Folding the delta into the per-socket timestamp offset (the Linux
        // `tsoffset` analogue) shifts, in one move, every timestamp the
        // socket will generate or interpret: skb timestamps and echoes are
        // recorded in the *effective* (offset-applied) domain, so they stay
        // continuous. `ts_recent` is in the peer's jiffies domain and must
        // not change.
        self.ts_offset -= delta;
    }

    /// Restart the retransmission timer after the socket is rehashed on the
    /// destination node (§V-C1: "the retransmission timer is restarted").
    pub fn restart_timer_after_restore(&mut self, ctx: &mut TcpCtx<'_>) -> Vec<TcpOut> {
        let mut out = Vec::new();
        if self.flight() > 0 || (self.fin_sent && seq_lt(self.snd_una, self.snd_nxt)) {
            let deadline = ctx.now + self.rto_us;
            self.rto_deadline = Some(deadline);
            self.timer_gen += 1;
            out.push(TcpOut::ArmTimer(deadline));
        }
        out
    }

    /// Full checkpoint record (used for byte accounting and restore checks).
    pub fn record(&self) -> TcpSocketRecord {
        TcpSocketRecord {
            local: self.local,
            remote: self.remote,
            state: self.state,
            snd_una: self.snd_una,
            snd_nxt: self.snd_nxt,
            rcv_nxt: self.rcv_nxt,
            write_queue_bytes: self.write_queue.iter().map(Skb::record_len).sum(),
            recv_queue_bytes: self.recv_queue.iter().map(Skb::record_len).sum(),
            ofo_queue_bytes: self.ofo_queue.values().map(Skb::record_len).sum(),
            parked_bytes: self
                .backlog
                .iter()
                .chain(self.prequeue.iter())
                .map(|s| s.wire_size())
                .sum(),
            mutation_stamp: self.last_stamp,
        }
    }

    /// Encoded size of a full record.
    pub fn record_len(&self) -> u64 {
        let r = self.record();
        TCP_RECORD_SCALAR
            + r.write_queue_bytes
            + r.recv_queue_bytes
            + r.ofo_queue_bytes
            + r.parked_bytes
    }

    /// Encoded size of an incremental record containing only changes since
    /// `since` (a mutation stamp previously returned by
    /// [`mutation_stamp`](Self::mutation_stamp)).
    pub fn delta_len(&self, since: u64) -> u64 {
        if self.last_stamp <= since {
            return 0;
        }
        let mut len = DELTA_HEADER;
        if self.scalar_stamp > since {
            len += TCP_DELTA_SCALAR;
        }
        for skb in self.write_queue.iter().chain(self.recv_queue.iter()) {
            if skb.stamp > since {
                len += skb.record_len();
            }
        }
        for skb in self.ofo_queue.values() {
            if skb.stamp > since {
                len += skb.record_len();
            }
        }
        len
    }
}

/// Summary record of a TCP socket's checkpointable state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSocketRecord {
    /// Bound local endpoint.
    pub local: SockAddr,
    /// Peer endpoint, if connected.
    pub remote: Option<SockAddr>,
    /// Connection state at checkpoint time.
    pub state: TcpState,
    /// Oldest unacknowledged sequence number.
    pub snd_una: u32,
    /// Next sequence number to send.
    pub snd_nxt: u32,
    /// Next sequence number expected from the peer.
    pub rcv_nxt: u32,
    /// Encoded size of the unacknowledged write queue.
    pub write_queue_bytes: u64,
    /// Encoded size of the receive queue.
    pub recv_queue_bytes: u64,
    /// Encoded size of the out-of-order queue.
    pub ofo_queue_bytes: u64,
    /// Encoded size of the backlog parked behind a user lock.
    pub parked_bytes: u64,
    /// Stamp of the most recent mutation (incremental checkpoints).
    pub mutation_stamp: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvelm_net::Ip;

    fn sa(last: u8, port: u16) -> SockAddr {
        SockAddr::new(Ip::new(10, 0, 0, last), port)
    }

    struct Harness {
        stamp: u64,
        now: SimTime,
        jiffies_base: u64,
    }

    impl Harness {
        fn new() -> Harness {
            Harness {
                stamp: 0,
                now: SimTime::ZERO,
                jiffies_base: 1_000,
            }
        }
        fn ctx(&mut self) -> TcpCtx<'_> {
            TcpCtx {
                now: self.now,
                jiffies: Jiffies::at(self.jiffies_base, self.now),
                stamp: &mut self.stamp,
            }
        }
        fn advance(&mut self, us: u64) {
            self.now += us;
        }
    }

    /// Drive a full handshake between two sockets; returns (client, server).
    fn established_pair(h: &mut Harness) -> (TcpSocket, TcpSocket) {
        let (mut client, out) = TcpSocket::connect(sa(1, 4000), sa(2, 5000), 100, &mut h.ctx());
        let syn = extract_tx(&out).pop().unwrap();
        let (mut server, out) = TcpSocket::passive_open(
            sa(2, 5000),
            sa(1, 4000),
            syn.tcp_seq().unwrap(),
            Jiffies(0),
            900,
            &mut h.ctx(),
        );
        let syn_ack = extract_tx(&out).pop().unwrap();
        let out = client.on_segment(syn_ack, &mut h.ctx());
        assert!(out.iter().any(|o| matches!(o, TcpOut::Established)));
        let ack = extract_tx(&out).pop().unwrap();
        let out = server.on_segment(ack, &mut h.ctx());
        assert!(out.iter().any(|o| matches!(o, TcpOut::Established)));
        assert_eq!(client.state, TcpState::Established);
        assert_eq!(server.state, TcpState::Established);
        (client, server)
    }

    fn extract_tx(out: &[TcpOut]) -> Vec<Segment> {
        out.iter()
            .filter_map(|o| match o {
                TcpOut::Tx(s) => Some(s.clone()),
                _ => None,
            })
            .collect()
    }

    /// Deliver data client→server and return what the server app reads.
    fn pump(h: &mut Harness, from: &mut TcpSocket, to: &mut TcpSocket, data: &[u8]) -> Vec<u8> {
        let out = from.send(Bytes::copy_from_slice(data), &mut h.ctx());
        let mut received = Vec::new();
        for seg in extract_tx(&out) {
            let replies = to.on_segment(seg, &mut h.ctx());
            for skb in to.read(&mut h.ctx()) {
                received.extend_from_slice(&skb.payload);
            }
            for r in extract_tx(&replies) {
                from.on_segment(r, &mut h.ctx());
            }
        }
        received
    }

    #[test]
    fn three_way_handshake() {
        let mut h = Harness::new();
        let (c, s) = established_pair(&mut h);
        assert_eq!(c.snd_nxt(), 101);
        assert_eq!(c.rcv_nxt(), 901);
        assert_eq!(s.rcv_nxt(), 101);
        assert!(!c.timer_armed(), "no data in flight after handshake");
    }

    #[test]
    fn data_transfer_and_ack() {
        let mut h = Harness::new();
        let (mut c, mut s) = established_pair(&mut h);
        let got = pump(&mut h, &mut c, &mut s, b"hello world");
        assert_eq!(got, b"hello world");
        assert_eq!(c.flight(), 0, "everything acked");
        assert_eq!(c.queue_lens().0, 0, "write queue drained");
    }

    #[test]
    fn segmentation_at_mss() {
        let mut h = Harness::new();
        let (mut c, _s) = established_pair(&mut h);
        let data = vec![7u8; MSS as usize * 2 + 100];
        let out = c.send(Bytes::from(data), &mut h.ctx());
        let txs = extract_tx(&out);
        assert_eq!(txs.len(), 3);
        assert_eq!(txs[0].payload_len(), MSS as usize);
        assert_eq!(txs[2].payload_len(), 100);
    }

    #[test]
    fn out_of_order_reassembly() {
        let mut h = Harness::new();
        let (mut c, mut s) = established_pair(&mut h);
        let out = c.send(Bytes::from(vec![1u8; MSS as usize * 3]), &mut h.ctx());
        let txs = extract_tx(&out);
        // Deliver 3rd, then 1st, then 2nd.
        s.on_segment(txs[2].clone(), &mut h.ctx());
        assert_eq!(s.queue_lens().2, 1, "one skb parked out-of-order");
        assert!(s.read(&mut h.ctx()).is_empty(), "nothing readable yet");
        s.on_segment(txs[0].clone(), &mut h.ctx());
        s.on_segment(txs[1].clone(), &mut h.ctx());
        let total: usize = s.read(&mut h.ctx()).iter().map(|k| k.payload.len()).sum();
        assert_eq!(total, MSS as usize * 3);
        assert_eq!(s.queue_lens().2, 0, "ofo queue drained");
    }

    #[test]
    fn duplicate_segment_is_reacked_not_redelivered() {
        let mut h = Harness::new();
        let (mut c, mut s) = established_pair(&mut h);
        let out = c.send(Bytes::from_static(b"abc"), &mut h.ctx());
        let seg = extract_tx(&out).pop().unwrap();
        s.on_segment(seg.clone(), &mut h.ctx());
        assert_eq!(s.read(&mut h.ctx()).len(), 1);
        let replies = s.on_segment(seg, &mut h.ctx());
        assert_eq!(extract_tx(&replies).len(), 1, "dup triggers re-ACK");
        assert!(s.read(&mut h.ctx()).is_empty(), "no duplicate delivery");
    }

    #[test]
    fn rto_retransmits_and_backs_off() {
        let mut h = Harness::new();
        let (mut c, _s) = established_pair(&mut h);
        let out = c.send(Bytes::from_static(b"lost"), &mut h.ctx());
        assert_eq!(extract_tx(&out).len(), 1);
        let rto_before = c.rto_us();
        h.advance(rto_before + 1);
        let out = c.on_rto(&mut h.ctx());
        let txs = extract_tx(&out);
        assert_eq!(txs.len(), 1, "retransmission");
        assert_eq!(txs[0].payload_len(), 4);
        assert_eq!(c.rto_us(), rto_before * 2, "exponential backoff");
        assert_eq!(c.cwnd(), MSS, "cwnd collapsed on loss");
    }

    #[test]
    fn rtt_sample_sets_srtt_and_rto() {
        let mut h = Harness::new();
        let (mut c, mut s) = established_pair(&mut h);
        // 3 jiffies (30 ms) of simulated delay before the ACK comes back.
        let out = c.send(Bytes::from_static(b"ping"), &mut h.ctx());
        let seg = extract_tx(&out).pop().unwrap();
        h.advance(30 * MILLISECOND);
        let replies = s.on_segment(seg, &mut h.ctx());
        for r in extract_tx(&replies) {
            c.on_segment(r, &mut h.ctx());
        }
        assert_eq!(c.srtt_us(), 30 * MILLISECOND);
        assert!(c.rto_us() >= RTO_MIN_US);
        assert!(c.rto_us() < SECOND);
    }

    #[test]
    fn user_lock_diverts_to_backlog() {
        let mut h = Harness::new();
        let (mut c, mut s) = established_pair(&mut h);
        s.user_locked = true;
        let out = c.send(Bytes::from_static(b"x"), &mut h.ctx());
        let seg = extract_tx(&out).pop().unwrap();
        let replies = s.on_segment(seg, &mut h.ctx());
        assert!(replies.is_empty(), "locked socket defers processing");
        assert_eq!(s.queue_lens().3, 1, "segment parked on backlog");
        assert!(!s.parked_queues_empty());
        s.user_locked = false;
        let replies = s.process_parked(&mut h.ctx());
        assert!(
            !extract_tx(&replies).is_empty(),
            "backlog processed on unlock"
        );
        assert_eq!(s.read(&mut h.ctx()).len(), 1);
        assert!(s.parked_queues_empty());
    }

    #[test]
    fn fast_path_reader_diverts_to_prequeue() {
        let mut h = Harness::new();
        let (mut c, mut s) = established_pair(&mut h);
        s.fast_path_reader = true;
        let out = c.send(Bytes::from_static(b"y"), &mut h.ctx());
        let seg = extract_tx(&out).pop().unwrap();
        s.on_segment(seg, &mut h.ctx());
        assert_eq!(s.queue_lens().4, 1, "segment on prequeue");
        s.fast_path_reader = false;
        s.process_parked(&mut h.ctx());
        assert_eq!(s.read(&mut h.ctx()).len(), 1);
    }

    #[test]
    fn graceful_close_both_sides() {
        let mut h = Harness::new();
        let (mut c, mut s) = established_pair(&mut h);
        let out = c.close(&mut h.ctx());
        assert_eq!(c.state, TcpState::FinWait1);
        let fin = extract_tx(&out).pop().unwrap();
        let out = s.on_segment(fin, &mut h.ctx());
        assert_eq!(s.state, TcpState::CloseWait);
        assert!(out.iter().any(|o| matches!(o, TcpOut::PeerFin)));
        for seg in extract_tx(&out) {
            c.on_segment(seg, &mut h.ctx());
        }
        assert_eq!(c.state, TcpState::FinWait2);
        let out = s.close(&mut h.ctx());
        assert_eq!(s.state, TcpState::LastAck);
        let fin2 = extract_tx(&out).pop().unwrap();
        let out = c.on_segment(fin2, &mut h.ctx());
        assert_eq!(c.state, TcpState::TimeWait);
        for seg in extract_tx(&out) {
            s.on_segment(seg, &mut h.ctx());
        }
        assert_eq!(s.state, TcpState::Closed);
    }

    #[test]
    fn rst_closes_immediately() {
        let mut h = Harness::new();
        let (mut c, s) = established_pair(&mut h);
        let rst = Segment::tcp(
            s.local,
            c.local,
            TcpFlags {
                rst: true,
                ..TcpFlags::default()
            },
            0,
            0,
            0,
            Jiffies(0),
            Jiffies(0),
            Bytes::new(),
        );
        let out = c.on_segment(rst, &mut h.ctx());
        assert_eq!(c.state, TcpState::Closed);
        assert!(out.iter().any(|o| matches!(o, TcpOut::Closed)));
    }

    #[test]
    fn record_len_grows_with_queued_data() {
        let mut h = Harness::new();
        let (mut c, _s) = established_pair(&mut h);
        let empty = c.record_len();
        assert_eq!(empty, TCP_RECORD_SCALAR);
        c.send(Bytes::from(vec![0u8; 256]), &mut h.ctx());
        assert_eq!(c.record_len(), TCP_RECORD_SCALAR + 68 + 256);
    }

    #[test]
    fn delta_len_is_zero_without_changes() {
        let mut h = Harness::new();
        let (mut c, mut s) = established_pair(&mut h);
        pump(&mut h, &mut c, &mut s, b"steady state");
        let stamp = c.mutation_stamp();
        assert_eq!(c.delta_len(stamp), 0, "no changes since stamp");
        // A new send dirties the socket again.
        c.send(Bytes::from_static(b"z"), &mut h.ctx());
        let d = c.delta_len(stamp);
        assert!(d > DELTA_HEADER + 68, "delta covers the new skb, got {d}");
        assert!(d < c.record_len(), "delta much smaller than full record");
    }

    #[test]
    fn migratable_states() {
        assert!(TcpState::Established.is_migratable());
        assert!(TcpState::Listen.is_migratable());
        assert!(!TcpState::SynSent.is_migratable());
        assert!(!TcpState::FinWait1.is_migratable());
    }

    #[test]
    fn quiesce_clears_timer_and_bumps_generation() {
        let mut h = Harness::new();
        let (mut c, _s) = established_pair(&mut h);
        c.send(Bytes::from_static(b"inflight"), &mut h.ctx());
        assert!(c.timer_armed());
        let gen = c.timer_gen;
        c.quiesce_for_migration();
        assert!(!c.timer_armed());
        assert!(c.timer_gen > gen, "stale timer fires must be ignorable");
    }

    #[test]
    fn restore_restarts_timer_only_with_data_in_flight() {
        let mut h = Harness::new();
        let (mut c, _s) = established_pair(&mut h);
        c.quiesce_for_migration();
        assert!(c.restart_timer_after_restore(&mut h.ctx()).is_empty());
        c.send(Bytes::from_static(b"data"), &mut h.ctx());
        c.quiesce_for_migration();
        let out = c.restart_timer_after_restore(&mut h.ctx());
        assert!(matches!(out[0], TcpOut::ArmTimer(_)));
    }

    #[test]
    fn jiffies_adjustment_keeps_rtt_sane_across_nodes() {
        // Client establishes against a server on a node with jiffies base
        // 1000; the server "migrates" to a node with base 2_000_000 (a ~5.5h
        // uptime difference). With adjustment, RTT samples stay correct.
        let mut h = Harness::new();
        let (mut c, mut s) = established_pair(&mut h);
        pump(&mut h, &mut c, &mut s, b"warmup");
        let rto_before = c.rto_us();

        // Move the *client* socket to a node with a very different base.
        let src_j = Jiffies::at(h.jiffies_base, h.now);
        h.jiffies_base = 2_000_000;
        let dst_j = Jiffies::at(h.jiffies_base, h.now);
        c.apply_jiffies_delta(dst_j.delta(src_j));

        let got = pump(&mut h, &mut c, &mut s, b"after-migration");
        assert_eq!(got, b"after-migration");
        assert!(
            c.rto_us() <= rto_before.max(RTO_MIN_US) * 2,
            "rto exploded despite adjustment: {} vs {}",
            c.rto_us(),
            rto_before
        );
    }

    #[test]
    fn missing_jiffies_adjustment_blows_up_rto() {
        let mut h = Harness::new();
        let (mut c, mut s) = established_pair(&mut h);
        pump(&mut h, &mut c, &mut s, b"warmup");
        // Jiffies base jumps *down* without adjustment: the next echoed
        // timestamp looks like it is from the future → RTO_MAX sample.
        h.jiffies_base = 10;
        pump(&mut h, &mut c, &mut s, b"post");
        assert!(
            c.rto_us() > 10 * SECOND,
            "expected broken RTO without adjustment, got {}µs",
            c.rto_us()
        );
    }

    #[test]
    fn window_limits_flight() {
        let mut h = Harness::new();
        let (mut c, _s) = established_pair(&mut h);
        // Shrink the peer window artificially.
        c.snd_wnd = MSS;
        let out = c.send(Bytes::from(vec![0u8; MSS as usize * 4]), &mut h.ctx());
        let txs = extract_tx(&out);
        assert_eq!(txs.len(), 1, "only one MSS fits the window");
        assert_eq!(c.flight(), MSS);
    }
}
