//! UDP sockets.
//!
//! Migration of a UDP socket (§V-C2) is "considerably easier than TCP":
//! besides the main socket structure only the receive-queue buffers are
//! tracked and transferred, and a bound server socket must be unhashed
//! before and rehashed after the move.

use crate::seg::Segment;
use crate::skb::Skb;
use bytes::Bytes;
use dvelm_net::SockAddr;
use dvelm_sim::{Jiffies, SimTime};
use std::collections::VecDeque;

/// Fixed encoded size of the scalar part of a UDP socket record, bytes.
pub const UDP_RECORD_SCALAR: u64 = 128;
/// Encoded size of the scalar block in an incremental UDP record, bytes.
pub const UDP_DELTA_SCALAR: u64 = 48;

/// A datagram queued for the application, with its source address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Source address of the datagram.
    pub from: SockAddr,
    /// The buffered payload.
    pub skb: Skb,
}

/// A UDP socket.
#[derive(Debug, Clone)]
pub struct UdpSocket {
    /// Bound local address.
    pub local: SockAddr,
    /// Default peer installed by `connect()` (optional).
    pub remote: Option<SockAddr>,
    recv_queue: VecDeque<Datagram>,
    last_stamp: u64,
    scalar_stamp: u64,
    /// Datagrams delivered to the application in total.
    pub delivered: u64,
}

impl UdpSocket {
    /// A socket bound to `local`.
    pub fn bind(local: SockAddr) -> UdpSocket {
        UdpSocket {
            local,
            remote: None,
            recv_queue: VecDeque::new(),
            last_stamp: 0,
            scalar_stamp: 0,
            delivered: 0,
        }
    }

    /// Install a default peer.
    pub fn connect(&mut self, remote: SockAddr) {
        self.remote = Some(remote);
    }

    /// Build a datagram to `dst`.
    pub fn send_to(&self, dst: SockAddr, payload: Bytes) -> Segment {
        Segment::udp(self.local, dst, payload)
    }

    /// Build a datagram to the connected peer; `None` if the socket has no
    /// default peer (the kernel would return `ENOTCONN`).
    pub fn send(&self, payload: Bytes) -> Option<Segment> {
        self.remote.map(|remote| self.send_to(remote, payload))
    }

    /// Enqueue an arriving datagram. Returns `true` if the receive queue was
    /// previously empty (app should be notified).
    pub fn on_datagram(
        &mut self,
        seg: Segment,
        now: SimTime,
        jiffies: Jiffies,
        stamp: &mut u64,
    ) -> bool {
        let crate::seg::Transport::Udp { payload } = seg.transport else {
            return false;
        };
        *stamp += 1;
        self.last_stamp = *stamp;
        let was_empty = self.recv_queue.is_empty();
        self.recv_queue.push_back(Datagram {
            from: seg.src,
            skb: Skb::new(0, payload, jiffies, now, *stamp),
        });
        was_empty
    }

    /// Application read: drain the receive queue.
    pub fn read(&mut self, stamp: &mut u64) -> Vec<Datagram> {
        if self.recv_queue.is_empty() {
            return Vec::new();
        }
        *stamp += 1;
        self.last_stamp = *stamp;
        let drained: Vec<Datagram> = self.recv_queue.drain(..).collect();
        self.delivered += drained.len() as u64;
        drained
    }

    /// Undelivered datagrams currently queued.
    pub fn queued(&self) -> usize {
        self.recv_queue.len()
    }

    /// Stamp of the most recent mutation.
    pub fn mutation_stamp(&self) -> u64 {
        self.last_stamp
    }

    /// Encoded size of a full checkpoint record: the socket structure plus
    /// every receive-queue buffer.
    pub fn record_len(&self) -> u64 {
        UDP_RECORD_SCALAR
            + self
                .recv_queue
                .iter()
                .map(|d| d.skb.record_len())
                .sum::<u64>()
    }

    /// Encoded size of an incremental record with changes since `since`.
    pub fn delta_len(&self, since: u64) -> u64 {
        if self.last_stamp <= since {
            return 0;
        }
        let mut len = crate::tcp::DELTA_HEADER;
        if self.scalar_stamp > since {
            len += UDP_DELTA_SCALAR;
        }
        for d in &self.recv_queue {
            if d.skb.stamp > since {
                len += d.skb.record_len();
            }
        }
        len
    }

    /// Jiffies adjustment after migration: nothing in the UDP socket depends
    /// on local jiffies except skb timestamps, which are in the effective
    /// domain already (see the TCP counterpart); kept for interface symmetry.
    pub fn apply_jiffies_delta(&mut self, _delta: i64) {}
}

/// Summary record of a UDP socket's checkpointable state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpSocketRecord {
    /// Bound local address.
    pub local: SockAddr,
    /// Default peer, if connected.
    pub remote: Option<SockAddr>,
    /// Encoded size of the queued receive buffers.
    pub recv_queue_bytes: u64,
    /// Stamp of the most recent mutation (incremental checkpoints).
    pub mutation_stamp: u64,
}

impl UdpSocket {
    /// Build the summary record.
    pub fn record(&self) -> UdpSocketRecord {
        UdpSocketRecord {
            local: self.local,
            remote: self.remote,
            recv_queue_bytes: self.recv_queue.iter().map(|d| d.skb.record_len()).sum(),
            mutation_stamp: self.last_stamp,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvelm_net::Ip;

    fn sa(last: u8, port: u16) -> SockAddr {
        SockAddr::new(Ip::new(10, 0, 0, last), port)
    }

    #[test]
    fn datagram_roundtrip() {
        let mut stamp = 0;
        let mut server = UdpSocket::bind(sa(1, 27960));
        let client = {
            let mut c = UdpSocket::bind(sa(2, 40000));
            c.connect(sa(1, 27960));
            c
        };
        let seg = client
            .send(Bytes::from_static(b"usercmd"))
            .expect("connected");
        let notify = server.on_datagram(seg, SimTime::ZERO, Jiffies(0), &mut stamp);
        assert!(notify);
        let got = server.read(&mut stamp);
        assert_eq!(got.len(), 1);
        assert_eq!(&got[0].skb.payload[..], b"usercmd");
        assert_eq!(got[0].from, sa(2, 40000));
        assert_eq!(server.delivered, 1);
    }

    #[test]
    fn notify_only_on_empty_to_nonempty() {
        let mut stamp = 0;
        let mut s = UdpSocket::bind(sa(1, 1));
        let seg = Segment::udp(sa(2, 2), sa(1, 1), Bytes::from_static(b"a"));
        assert!(s.on_datagram(seg.clone(), SimTime::ZERO, Jiffies(0), &mut stamp));
        assert!(!s.on_datagram(seg, SimTime::ZERO, Jiffies(0), &mut stamp));
    }

    #[test]
    fn record_len_tracks_queue() {
        let mut stamp = 0;
        let mut s = UdpSocket::bind(sa(1, 1));
        assert_eq!(s.record_len(), UDP_RECORD_SCALAR);
        let seg = Segment::udp(sa(2, 2), sa(1, 1), Bytes::from(vec![0u8; 256]));
        s.on_datagram(seg, SimTime::ZERO, Jiffies(0), &mut stamp);
        assert_eq!(s.record_len(), UDP_RECORD_SCALAR + 68 + 256);
        s.read(&mut stamp);
        assert_eq!(s.record_len(), UDP_RECORD_SCALAR);
    }

    #[test]
    fn delta_reflects_new_buffers_only() {
        let mut stamp = 0;
        let mut s = UdpSocket::bind(sa(1, 1));
        let seg = Segment::udp(sa(2, 2), sa(1, 1), Bytes::from(vec![0u8; 100]));
        s.on_datagram(seg.clone(), SimTime::ZERO, Jiffies(0), &mut stamp);
        let mark = s.mutation_stamp();
        assert_eq!(s.delta_len(mark), 0);
        s.on_datagram(seg, SimTime::ZERO, Jiffies(0), &mut stamp);
        let d = s.delta_len(mark);
        assert!(d >= 68 + 100, "delta covers only the new skb: {d}");
        assert!(d < s.record_len());
    }

    #[test]
    fn send_unconnected_is_refused() {
        let s = UdpSocket::bind(sa(1, 1));
        assert!(
            s.send(Bytes::new()).is_none(),
            "no default peer, no datagram"
        );
    }
}
