//! Always-on invariant monitor for the cluster simulation.
//!
//! The partition-tolerant control plane makes claims that are easy to state
//! and easy to silently break: at any instant each process has exactly one
//! live copy, a process only vanishes when the host holding it died, capture
//! traffic stays within its budget, and the epoch a process migrates under
//! never goes backwards. This crate is the referee: the world feeds it
//! ownership events as they happen, and it records a typed
//! [`InvariantViolation`] the moment reality diverges from the model —
//! instead of a test failing three hundred simulated seconds later with a
//! mysterious counter mismatch.
//!
//! Design constraints:
//!
//! - **Passive.** The monitor never schedules events, never draws from the
//!   simulation RNG, and never mutates the world. Enabling it cannot change
//!   a single byte of the deterministic effect stream (asserted by the
//!   determinism-replay suite).
//! - **Zero cost when disabled.** The world holds an
//!   `Option<InvariantMonitor>`; every hook site is a single `if let` on
//!   that option.
//! - **Typed, deduplicated findings.** Violations are data, not panics, so
//!   chaos soaks can run to completion and report everything they saw; a
//!   condition that persists across sweeps is recorded once.

use dvelm_proc::Pid;
use dvelm_sim::SimTime;
use std::collections::BTreeMap;

/// A broken invariant, with enough context to debug it from the report
/// alone. All variants carry the simulation time at which the monitor
/// noticed the breakage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantViolation {
    /// Two live copies of one process exist at once — the precise failure
    /// the epoch/lease fencing protocol exists to prevent. `first` is the
    /// host the monitor believed owned the pid, `second` the host where a
    /// second copy appeared.
    SplitBrain {
        pid: Pid,
        first: usize,
        second: usize,
        at: SimTime,
    },
    /// A process disappeared from a host that is still alive: neither
    /// exited, nor migrated, nor lost to a crash.
    LostProcess { pid: Pid, host: usize, at: SimTime },
    /// A migration of `pid` started under an epoch no greater than one
    /// already witnessed for it — a stale negotiation slipped past the
    /// fence.
    NonMonotonicEpoch {
        pid: Pid,
        prev: u64,
        next: u64,
        at: SimTime,
    },
    /// A capture stream exceeded its configured packet budget.
    CapturePacketsOverBudget { peak: u64, budget: u64, at: SimTime },
    /// A capture stream exceeded its configured byte budget.
    CaptureBytesOverBudget { peak: u64, budget: u64, at: SimTime },
    /// An address-translation (xlate) entry points a pid at a host that
    /// does not own it.
    XlateInconsistent {
        pid: Pid,
        mapped_to: usize,
        owner: Option<usize>,
        at: SimTime,
    },
    /// An ownership event referenced a host the monitor never saw own the
    /// pid (bookkeeping desync between world and monitor — itself a bug).
    UnknownOwner { pid: Pid, host: usize, at: SimTime },
    /// A post-copy migration was torn down while `pages` residual pages
    /// were still owed to the destination, and the destination copy kept
    /// running anyway: it can fault on memory nobody will ever serve.
    ResidualDependencyLeak { pid: Pid, pages: u64, at: SimTime },
    /// The source-side copy of a post-copy-migrated process executed an
    /// application write after handoff: any page it dirties outside the
    /// residual-dependency ledger silently diverges the two copies — the
    /// stale-source hazard the ledger protocol exists to prevent.
    StaleSourceWrite { pid: Pid, at: SimTime },
    /// An interest-table subscription for `pid`'s zone points at a host
    /// that does not own the process (and the pid is not mid-migration,
    /// when both ends legitimately subscribe). A leaked subscription turns
    /// the zoned fast path back into a partial broadcast — or worse,
    /// delivers a zone's traffic to a node with no server for it. `zone`
    /// is the raw zone id (this crate doesn't depend on the net crate).
    SubscriptionLeak {
        pid: Pid,
        zone: u32,
        host: usize,
        at: SimTime,
    },
}

impl InvariantViolation {
    /// Stable label for reports and assertions.
    pub fn label(&self) -> &'static str {
        match self {
            InvariantViolation::SplitBrain { .. } => "split brain",
            InvariantViolation::LostProcess { .. } => "lost process",
            InvariantViolation::NonMonotonicEpoch { .. } => "non-monotonic epoch",
            InvariantViolation::CapturePacketsOverBudget { .. } => "capture packets over budget",
            InvariantViolation::CaptureBytesOverBudget { .. } => "capture bytes over budget",
            InvariantViolation::XlateInconsistent { .. } => "xlate inconsistent",
            InvariantViolation::UnknownOwner { .. } => "unknown owner",
            InvariantViolation::ResidualDependencyLeak { .. } => "residual dependency leak",
            InvariantViolation::StaleSourceWrite { .. } => "stale source write",
            InvariantViolation::SubscriptionLeak { .. } => "subscription leak",
        }
    }
}

/// The monitor proper: a shadow ownership model plus the violations found.
#[derive(Debug, Clone, Default)]
pub struct InvariantMonitor {
    /// Which host owns each live process. A pid mid-migration stays owned
    /// by the source until the destination restore commits.
    owners: BTreeMap<Pid, usize>,
    /// Highest epoch witnessed per pid across all migrations.
    epochs: BTreeMap<Pid, u64>,
    violations: Vec<InvariantViolation>,
}

impl InvariantMonitor {
    /// A fresh monitor with no knowledge and no findings.
    pub fn new() -> InvariantMonitor {
        InvariantMonitor::default()
    }

    fn record(&mut self, v: InvariantViolation) {
        // A persisting condition (e.g. a split brain observed by every
        // sweep until healed) is recorded once.
        if !self.violations.contains(&v) {
            self.violations.push(v);
        }
    }

    /// All violations observed so far, in discovery order.
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.violations
    }

    /// Whether no invariant has been broken.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The host currently believed to own `pid`.
    pub fn owner_of(&self, pid: Pid) -> Option<usize> {
        self.owners.get(&pid).copied()
    }

    // -----------------------------------------------------------------
    // Ownership event hooks (called by the world as things happen).
    // -----------------------------------------------------------------

    /// A process was created on `host`.
    pub fn on_spawn(&mut self, now: SimTime, pid: Pid, host: usize) {
        if let Some(&first) = self.owners.get(&pid) {
            self.record(InvariantViolation::SplitBrain {
                pid,
                first,
                second: host,
                at: now,
            });
            return;
        }
        self.owners.insert(pid, host);
    }

    /// A live copy of `pid` appeared on `host` outside a tracked spawn or
    /// migration commit — e.g. a partition-healed destination resuming a
    /// checkpoint. Legitimate only if nobody else owns the pid.
    pub fn on_adopt(&mut self, now: SimTime, pid: Pid, host: usize) {
        match self.owners.get(&pid) {
            Some(&first) if first != host => self.record(InvariantViolation::SplitBrain {
                pid,
                first,
                second: host,
                at: now,
            }),
            _ => {
                self.owners.insert(pid, host);
            }
        }
    }

    /// A migration of `pid` committed: the destination restore succeeded
    /// and the source image was discarded.
    pub fn on_transfer(&mut self, now: SimTime, pid: Pid, from: usize, to: usize) {
        match self.owners.get(&pid) {
            Some(&owner) if owner == from => {
                self.owners.insert(pid, to);
            }
            Some(&owner) => {
                // The source didn't own it: a second copy just landed.
                self.record(InvariantViolation::SplitBrain {
                    pid,
                    first: owner,
                    second: to,
                    at: now,
                });
            }
            None => {
                self.record(InvariantViolation::UnknownOwner {
                    pid,
                    host: from,
                    at: now,
                });
                self.owners.insert(pid, to);
            }
        }
    }

    /// `pid` exited (or was deliberately killed) on `host`.
    pub fn on_exit(&mut self, now: SimTime, pid: Pid, host: usize) {
        match self.owners.remove(&pid) {
            Some(owner) if owner == host => {}
            _ => self.record(InvariantViolation::UnknownOwner { pid, host, at: now }),
        }
    }

    /// `host` died. Every process it owned goes down with it — that is a
    /// casualty, not a violation.
    pub fn on_host_down(&mut self, host: usize) {
        self.owners.retain(|_, h| *h != host);
    }

    /// `pid`'s image was destroyed while its host was still alive
    /// (`host_alive == true` makes this a violation; a dead host is the
    /// `on_host_down` path and forgiven).
    pub fn on_lost(&mut self, now: SimTime, pid: Pid, host_alive: bool) {
        let host = self.owners.remove(&pid);
        if host_alive {
            self.record(InvariantViolation::LostProcess {
                pid,
                host: host.unwrap_or(usize::MAX),
                at: now,
            });
        }
    }

    /// A migration of `pid` is starting under `epoch`. Epoch 0 is the
    /// manual/unfenced path and exempt; otherwise each migration must carry
    /// a strictly larger epoch than every earlier one for the same pid.
    pub fn on_epoch(&mut self, now: SimTime, pid: Pid, epoch: u64) {
        if epoch == 0 {
            return;
        }
        let prev = self.epochs.get(&pid).copied().unwrap_or(0);
        if epoch <= prev {
            self.record(InvariantViolation::NonMonotonicEpoch {
                pid,
                prev,
                next: epoch,
                at: now,
            });
        } else {
            self.epochs.insert(pid, epoch);
        }
    }

    /// A post-copy migration of `pid` was torn down with `pages` residual
    /// pages still unserved while the destination copy survived. Recorded
    /// unconditionally for `pages > 0` — a leak with zero pages owed is not
    /// a leak.
    pub fn on_residual_leak(&mut self, now: SimTime, pid: Pid, pages: u64) {
        if pages > 0 {
            self.record(InvariantViolation::ResidualDependencyLeak {
                pid,
                pages,
                at: now,
            });
        }
    }

    /// The stale source copy of `pid` executed an application write after
    /// handoff. Called by the world the first time the source-side app
    /// ticks after an unfenced rollback raced a surviving destination.
    pub fn on_stale_source_write(&mut self, now: SimTime, pid: Pid) {
        self.record(InvariantViolation::StaleSourceWrite { pid, at: now });
    }

    // -----------------------------------------------------------------
    // Sweep checks (called with world-derived observations).
    // -----------------------------------------------------------------

    /// Compare capture-stream peaks against their budgets.
    pub fn check_capture(
        &mut self,
        now: SimTime,
        peak_packets: u64,
        max_packets: u64,
        peak_bytes: u64,
        max_bytes: u64,
    ) {
        if peak_packets > max_packets {
            self.record(InvariantViolation::CapturePacketsOverBudget {
                peak: peak_packets,
                budget: max_packets,
                at: now,
            });
        }
        if peak_bytes > max_bytes {
            self.record(InvariantViolation::CaptureBytesOverBudget {
                peak: peak_bytes,
                budget: max_bytes,
                at: now,
            });
        }
    }

    /// Check one address-translation entry against the ownership model:
    /// a forwarding entry must point at the pid's owner.
    pub fn check_xlate(&mut self, now: SimTime, pid: Pid, mapped_to: usize) {
        let owner = self.owner_of(pid);
        if owner != Some(mapped_to) {
            self.record(InvariantViolation::XlateInconsistent {
                pid,
                mapped_to,
                owner,
                at: now,
            });
        }
    }

    /// Check one interest-table subscription against the ownership model.
    /// `subscriber` is the host a router subscription for `pid`'s `zone`
    /// points at; it must be the pid's owner. Callers skip pids that are
    /// mid-migration — the loss-prevention mechanism subscribes the
    /// destination while the source still owns the process, and that
    /// transient double subscription is the design, not a leak.
    pub fn check_subscription(&mut self, now: SimTime, pid: Pid, zone: u32, subscriber: usize) {
        if self.owner_of(pid) != Some(subscriber) {
            self.record(InvariantViolation::SubscriptionLeak {
                pid,
                zone,
                host: subscriber,
                at: now,
            });
        }
    }

    /// Reconcile the shadow model against the world's actual live set:
    /// every `(pid, host)` pair currently runnable or frozen-in-place.
    /// Catches drift in either direction — a live copy the model doesn't
    /// know (split brain) and a modelled owner with no live copy (lost
    /// process), the latter only for hosts still alive per `host_alive`.
    pub fn reconcile<F>(&mut self, now: SimTime, live: &[(Pid, usize)], host_alive: F)
    where
        F: Fn(usize) -> bool,
    {
        let mut seen: BTreeMap<Pid, usize> = BTreeMap::new();
        for &(pid, host) in live {
            if let Some(&other) = seen.get(&pid) {
                if other != host {
                    self.record(InvariantViolation::SplitBrain {
                        pid,
                        first: other,
                        second: host,
                        at: now,
                    });
                }
                continue;
            }
            seen.insert(pid, host);
            match self.owners.get(&pid) {
                Some(&owner) if owner != host => self.record(InvariantViolation::SplitBrain {
                    pid,
                    first: owner,
                    second: host,
                    at: now,
                }),
                Some(_) => {}
                None => self.record(InvariantViolation::UnknownOwner { pid, host, at: now }),
            }
        }
        let missing: Vec<(Pid, usize)> = self
            .owners
            .iter()
            .filter(|(pid, host)| !seen.contains_key(pid) && host_alive(**host))
            .map(|(pid, host)| (*pid, *host))
            .collect();
        for (pid, host) in missing {
            self.record(InvariantViolation::LostProcess { pid, host, at: now });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: SimTime = SimTime(1_000_000);

    #[test]
    fn clean_lifecycle_records_nothing() {
        let mut m = InvariantMonitor::new();
        m.on_spawn(T, Pid(1), 0);
        m.on_epoch(T, Pid(1), 1);
        m.on_transfer(T, Pid(1), 0, 2);
        assert_eq!(m.owner_of(Pid(1)), Some(2));
        m.on_epoch(T, Pid(1), 2);
        m.on_transfer(T, Pid(1), 2, 1);
        m.on_exit(T, Pid(1), 1);
        assert!(m.is_clean(), "{:?}", m.violations());
        assert_eq!(m.owner_of(Pid(1)), None);
    }

    #[test]
    fn second_live_copy_is_split_brain() {
        let mut m = InvariantMonitor::new();
        m.on_spawn(T, Pid(7), 0);
        m.on_adopt(T, Pid(7), 3);
        assert_eq!(
            m.violations(),
            &[InvariantViolation::SplitBrain {
                pid: Pid(7),
                first: 0,
                second: 3,
                at: T
            }]
        );
        // The same persisting condition is not recorded twice.
        m.on_adopt(T, Pid(7), 3);
        assert_eq!(m.violations().len(), 1);
        // Re-adoption on the owning host is fine.
        let mut m2 = InvariantMonitor::new();
        m2.on_spawn(T, Pid(7), 0);
        m2.on_adopt(T, Pid(7), 0);
        assert!(m2.is_clean());
    }

    #[test]
    fn host_death_forgives_its_processes() {
        let mut m = InvariantMonitor::new();
        m.on_spawn(T, Pid(1), 0);
        m.on_spawn(T, Pid(2), 1);
        m.on_host_down(0);
        assert_eq!(m.owner_of(Pid(1)), None);
        assert_eq!(m.owner_of(Pid(2)), Some(1));
        // Losing pid 2 while host 1 lives IS a violation.
        m.on_lost(T, Pid(2), true);
        assert_eq!(m.violations().len(), 1);
        assert_eq!(m.violations()[0].label(), "lost process");
    }

    #[test]
    fn epochs_must_strictly_increase_except_manual_zero() {
        let mut m = InvariantMonitor::new();
        m.on_epoch(T, Pid(1), 3);
        m.on_epoch(T, Pid(1), 0); // manual path: exempt
        m.on_epoch(T, Pid(1), 4);
        assert!(m.is_clean());
        m.on_epoch(T, Pid(1), 4);
        assert_eq!(
            m.violations(),
            &[InvariantViolation::NonMonotonicEpoch {
                pid: Pid(1),
                prev: 4,
                next: 4,
                at: T
            }]
        );
    }

    #[test]
    fn capture_budget_checks() {
        let mut m = InvariantMonitor::new();
        m.check_capture(T, 64, 64, 1000, 2000);
        assert!(m.is_clean());
        m.check_capture(T, 65, 64, 3000, 2000);
        assert_eq!(m.violations().len(), 2);
    }

    #[test]
    fn xlate_must_point_at_owner() {
        let mut m = InvariantMonitor::new();
        m.on_spawn(T, Pid(5), 2);
        m.check_xlate(T, Pid(5), 2);
        assert!(m.is_clean());
        m.check_xlate(T, Pid(5), 1);
        assert_eq!(m.violations().len(), 1);
        assert_eq!(m.violations()[0].label(), "xlate inconsistent");
    }

    #[test]
    fn residual_hooks_record_the_postcopy_hazards() {
        let mut m = InvariantMonitor::new();
        // Zero pages owed is not a leak.
        m.on_residual_leak(T, Pid(3), 0);
        assert!(m.is_clean());
        m.on_residual_leak(T, Pid(3), 17);
        m.on_residual_leak(T, Pid(3), 17); // persisting condition: once
        m.on_stale_source_write(T, Pid(3));
        let labels: Vec<&str> = m.violations().iter().map(|v| v.label()).collect();
        assert_eq!(
            labels,
            vec!["residual dependency leak", "stale source write"]
        );
    }

    #[test]
    fn subscription_must_point_at_owner() {
        let mut m = InvariantMonitor::new();
        m.on_spawn(T, Pid(4), 2);
        m.check_subscription(T, Pid(4), 9, 2);
        assert!(m.is_clean());
        m.check_subscription(T, Pid(4), 9, 5);
        m.check_subscription(T, Pid(4), 9, 5); // persisting condition: once
        assert_eq!(m.violations().len(), 1);
        assert_eq!(m.violations()[0].label(), "subscription leak");
    }

    #[test]
    fn reconcile_catches_drift_both_ways() {
        let mut m = InvariantMonitor::new();
        m.on_spawn(T, Pid(1), 0);
        m.on_spawn(T, Pid(2), 1);
        // Matching reality: clean.
        m.reconcile(T, &[(Pid(1), 0), (Pid(2), 1)], |_| true);
        assert!(m.is_clean());
        // Pid 1 also alive on host 3 → split brain; pid 2 gone while its
        // host lives → lost.
        m.reconcile(T, &[(Pid(1), 0), (Pid(1), 3)], |_| true);
        let labels: Vec<&str> = m.violations().iter().map(|v| v.label()).collect();
        assert_eq!(labels, vec!["split brain", "lost process"]);
        // A dead host excuses the missing process.
        let mut m2 = InvariantMonitor::new();
        m2.on_spawn(T, Pid(9), 4);
        m2.reconcile(T, &[], |h| h != 4);
        assert!(m2.is_clean());
    }
}
