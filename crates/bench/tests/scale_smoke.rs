//! CI smoke test for the scale harness: the small cell runs, its JSON
//! round-trips with the required keys, and two same-seed runs agree on
//! every deterministic metric.

use dvelm_bench::json::Json;
use dvelm_bench::scale::{run_scale, scale_json, stack_json, ScaleConfig};

#[test]
fn smoke_cell_is_deterministic_and_its_json_roundtrips() {
    let cfg = ScaleConfig::smoke();
    let a = run_scale(&cfg);
    let b = run_scale(&cfg);
    assert_eq!(
        a.det_fingerprint(),
        b.det_fingerprint(),
        "same seed, same world, same metrics"
    );

    // The run did what the config asked for.
    assert_eq!(a.migrations_started, cfg.migrations);
    assert_eq!(
        a.migrations_completed + a.migrations_aborted,
        cfg.migrations
    );
    assert!(a.events > 0 && a.deliveries > 0 && a.usercmds > 0);

    // BENCH_scale.json: parses back, required keys present.
    let cells = [a, b];
    let scale_text = scale_json(&cells, None).render();
    let doc = Json::parse(&scale_text).expect("BENCH_scale.json parses");
    assert_eq!(doc.get("bench").and_then(Json::as_str), Some("scale"));
    let parsed_cells = doc
        .get("cells")
        .and_then(Json::as_arr)
        .expect("cells array");
    assert_eq!(parsed_cells.len(), 2);
    assert!(
        doc.get("host_cores").and_then(Json::as_f64).unwrap_or(0.0) >= 1.0,
        "BENCH_scale.json must record the measuring host's core count"
    );
    for key in [
        "cell",
        "nodes",
        "clients",
        "threads",
        "sched_clamped",
        "sim_us",
        "events",
        "events_per_sec",
        "deliveries",
        "deliveries_per_sec",
        "wall_ms",
        "wall_ms_per_sim_s",
        "migrations_completed",
    ] {
        assert!(
            parsed_cells[0].get(key).is_some(),
            "BENCH_scale cell missing key {key}"
        );
    }

    // BENCH_stack.json: parses back, required keys present.
    let stack_text = stack_json(&cells).render();
    let doc = Json::parse(&stack_text).expect("BENCH_stack.json parses");
    assert_eq!(doc.get("bench").and_then(Json::as_str), Some("stack"));
    let parsed_cells = doc
        .get("cells")
        .and_then(Json::as_arr)
        .expect("cells array");
    for key in [
        "cell",
        "peak_queued_packets",
        "peak_queued_bytes",
        "freeze_us_max",
        "total_us_max",
        "phase_us",
    ] {
        assert!(
            parsed_cells[0].get(key).is_some(),
            "BENCH_stack cell missing key {key}"
        );
    }
}

/// The parallel core's contract at the harness level: the deterministic
/// fingerprint — every metric except wall-clock — is identical at any
/// worker-thread count, and the fault-free smoke cell never clamps a
/// past-instant schedule (also asserted inside `run_scale`; checked here
/// so the field itself is exercised).
#[test]
fn fingerprint_is_thread_count_invariant() {
    let mut cells = Vec::new();
    for threads in [1usize, 2, 4] {
        let cfg = ScaleConfig {
            threads,
            ..ScaleConfig::smoke()
        };
        let cell = run_scale(&cfg);
        assert_eq!(cell.threads, threads, "resolved thread count recorded");
        assert_eq!(cell.sched_clamped, 0, "fault-free cell must not clamp");
        cells.push(cell);
    }
    let reference = cells[0].det_fingerprint();
    for cell in &cells[1..] {
        assert_eq!(
            cell.det_fingerprint(),
            reference,
            "thread count changed a deterministic metric (threads={})",
            cell.threads
        );
    }
}
