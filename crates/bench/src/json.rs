//! A minimal JSON value with a writer and a parser.
//!
//! The workspace deliberately carries no serialization framework (byte
//! layouts are part of the model, see `dvelm-ckpt::wire`), but the scale
//! harness needs machine-readable output that CI can parse back. This is
//! the smallest JSON that round-trips what the harness emits: objects keep
//! insertion order, numbers are f64, output is pretty-printed with stable
//! formatting so same-seed runs produce byte-identical files.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object as an ordered list of (key, value) — insertion order is
    /// rendering order, which keeps same-seed output byte-identical.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert (or replace) a key in an object; panics on non-objects
    /// (harness-internal misuse, not input data).
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        let Json::Obj(entries) = self else {
            panic!("Json::set on a non-object");
        };
        if let Some(slot) = entries.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            entries.push((key.to_owned(), value));
        }
        self
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-printed rendering (2-space indent, trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => render_num(out, *n),
            Json::Str(s) => render_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    pad(out, indent + 1);
                    render_str(out, k);
                    out.push_str(": ");
                    v.render_into(out, indent + 1);
                }
                out.push('\n');
                pad(out, indent);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (must consume all non-whitespace input).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::at(p.pos, "trailing data"));
        }
        Ok(v)
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Stable number formatting: integers without a fraction, everything else
/// via the shortest roundtrip rendering Rust gives us. JSON has no NaN or
/// infinity — those render as `null` rather than producing an unparseable
/// document.
fn render_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn render_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse failure: byte offset + what was expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What the parser expected there.
    pub expected: &'static str,
}

impl JsonError {
    fn at(at: usize, expected: &'static str) -> JsonError {
        JsonError { at, expected }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.expected)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(self.pos, what))
        }
    }

    fn eat_lit(&mut self, lit: &'static str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(JsonError::at(self.pos, "literal"))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true").map(|_| Json::Bool(true)),
            Some(b'f') => self.eat_lit("false").map(|_| Json::Bool(false)),
            Some(b'n') => self.eat_lit("null").map(|_| Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(JsonError::at(self.pos, "a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{', "'{'")?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "':'")?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(JsonError::at(self.pos, "',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[', "'['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::at(self.pos, "',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "'\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(JsonError::at(self.pos, "closing '\"'")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or(JsonError::at(self.pos, "4 hex digits"))?;
                            // Surrogate pairs are not emitted by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(hex).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(JsonError::at(self.pos, "escape character")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| {
                        JsonError::at(self.pos, "valid UTF-8") // unreachable from &str input
                    })?;
                    let c = s.chars().next().ok_or(JsonError::at(self.pos, "a char"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::at(start, "a number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonError::at(start, "a number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let mut doc = Json::obj();
        doc.set("name", Json::Str("scale".into()));
        doc.set("n", Json::Num(64.0));
        doc.set("ratio", Json::Num(1.625));
        doc.set(
            "cells",
            Json::Arr(vec![Json::Null, Json::Bool(true), Json::Num(-2.5)]),
        );
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn renders_integers_without_fraction() {
        let mut out = String::new();
        render_num(&mut out, 1234.0);
        assert_eq!(out, "1234");
    }

    #[test]
    fn escapes_roundtrip() {
        let doc = Json::Str("a\"b\\c\nd\te\u{1}".into());
        assert_eq!(Json::parse(&doc.render()).unwrap(), doc);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn get_and_set_replace() {
        let mut doc = Json::obj();
        doc.set("k", Json::Num(1.0));
        doc.set("k", Json::Num(2.0));
        assert_eq!(doc.get("k").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn same_doc_renders_byte_identically() {
        let mut a = Json::obj();
        a.set("x", Json::Num(0.125));
        a.set("y", Json::Arr(vec![Json::Num(1.0)]));
        let mut b = Json::obj();
        b.set("x", Json::Num(0.125));
        b.set("y", Json::Arr(vec![Json::Num(1.0)]));
        assert_eq!(a.render(), b.render());
    }
}
