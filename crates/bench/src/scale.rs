//! The scale-benchmark harness: seeded multi-node/multi-client scenarios
//! with concurrent migrations under load.
//!
//! Unlike the `fig*` binaries (which reproduce the paper's figures), this
//! harness measures the *simulator itself*: wall-clock per simulated
//! second, dispatched events per wall second, peak capture-queue depths
//! and per-phase migration costs at increasing cluster sizes. Its output
//! is machine-readable (`BENCH_scale.json` / `BENCH_stack.json`, see
//! [`scale_json`]/[`stack_json`]) so CI can detect performance
//! regressions by parsing the files back.
//!
//! The simulated world is deterministic for a given [`ScaleConfig`]; only
//! the wall-clock fields vary between runs. [`ScaleCell::det_fingerprint`]
//! captures exactly the deterministic subset.

use crate::json::Json;
use dvelm_cluster::{shards_from_env, World, WorldConfig};
use dvelm_migrate::Strategy;
use dvelm_net::{Ip, SockAddr, ZoneId};
use dvelm_openarena::apps::{OaClient, OaServer, OA_PORT};
use dvelm_sim::{SimTime, MILLISECOND, SECOND};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// One cell of the scale sweep: a cluster of `nodes` game servers with
/// `clients` players spread round-robin across them, running for
/// `run_secs` simulated seconds after a one-second warmup while
/// `migrations` staggered live migrations execute under load.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Server nodes in the cluster (one `OaServer` each, distinct ports).
    pub nodes: usize,
    /// Client hosts, assigned to servers round-robin.
    pub clients: usize,
    /// Migrations started 100 ms apart once the measured window opens.
    pub migrations: usize,
    /// Measured simulated duration (excludes the 1 s warmup).
    pub run_secs: u64,
    /// World RNG seed.
    pub seed: u64,
    /// Worker threads for the sharded event loop; `0` inherits
    /// `DVELM_SHARDS` (or 1). The resolved count lands in
    /// [`ScaleCell::threads`] and is excluded from the deterministic
    /// fingerprint — by design the thread count must not change a single
    /// deterministic metric.
    pub threads: usize,
    /// Arm the world's invariant monitor for the run. Like `threads`, this
    /// is excluded from the fingerprint — the monitor observes the run
    /// without scheduling events or drawing randomness, so a monitored
    /// cell must fingerprint identically to a plain one (asserted by
    /// `tests/determinism_replay.rs`).
    pub monitored: bool,
    /// Socket-migration strategy for the cell's migrations (and the
    /// world's conductor ceiling). The default trajectory runs
    /// [`Strategy::IncrementalCollective`]; the `--strategy` sweep covers
    /// the full five-variant family, whose residual counters
    /// (`demand_fetch_*`/`writeback_*`) land in `BENCH_scale.json`.
    pub strategy: Strategy,
    /// Interest-managed (AOI) routing: each server's port is mapped to its
    /// own zone, so inbound usercmds reach only the serving node instead of
    /// the full broadcast. AOI rows get an `@aoi`-suffixed cell key; the
    /// broadcast rows keep their historical keys and bytes.
    pub aoi: bool,
}

impl ScaleConfig {
    /// The cell the CI smoke test runs (small enough for debug builds).
    pub fn smoke() -> ScaleConfig {
        ScaleConfig {
            nodes: 4,
            clients: 100,
            migrations: 2,
            run_secs: 2,
            seed: SCALE_SEED,
            threads: 0,
            monitored: false,
            strategy: Strategy::IncrementalCollective,
            aoi: false,
        }
    }
}

/// Seed shared by every default-trajectory cell.
pub const SCALE_SEED: u64 = 0x05CA_1EBC;

/// Interval between staggered migration starts.
const MIGRATION_STAGGER_US: u64 = 100 * MILLISECOND;

/// Post-run drain window (in-flight packets and reports settle).
const DRAIN_US: u64 = SECOND / 10;

/// Measurements from one [`run_scale`] call.
#[derive(Debug, Clone)]
pub struct ScaleCell {
    /// The configuration that produced this cell.
    pub cfg: ScaleConfig,
    /// Worker threads the world actually ran with (the resolved value of
    /// [`ScaleConfig::threads`]). Wall-clock-side only: two cells that
    /// differ in nothing but `threads` share a fingerprint.
    pub threads: usize,
    /// Past-instant `schedule_at` clamps observed by the scheduler over the
    /// whole run. The fault-free trajectory asserts this stays zero — a
    /// non-zero count means some component computed an event instant in the
    /// past, which the scheduler silently snapped to `now`.
    pub sched_clamped: u64,
    /// Simulated microseconds in the measured window (run + drain).
    pub sim_us: u64,
    /// Scheduler events dispatched in the measured window.
    pub events: u64,
    /// Frames delivered to host stacks (`rx_total` deltas summed over the
    /// cluster) in the measured window. Unlike `events`, this count does
    /// not depend on how the scheduler batches work, so it is comparable
    /// across trees that schedule differently.
    pub deliveries: u64,
    /// Usercmds processed by all servers over the whole run.
    pub usercmds: u64,
    /// Typed routing errors surfaced by the broadcast router.
    pub route_errors: u64,
    /// Migrations admitted by [`World::begin_migration`].
    pub migrations_started: usize,
    /// Migrations refused at admission (budget/duplicate/dead node).
    pub migrations_rejected: usize,
    /// Completed migration reports.
    pub migrations_completed: usize,
    /// Aborted migration reports.
    pub migrations_aborted: usize,
    /// Worst freeze time over completed migrations (µs).
    pub freeze_us_max: u64,
    /// Worst start-to-resume time over completed migrations (µs).
    pub total_us_max: u64,
    /// Summed time spent in each migration phase across completed
    /// migrations (µs), keyed by phase name.
    pub phase_us: BTreeMap<&'static str, u64>,
    /// Pages fetched on demand from source ledgers across completed
    /// migrations (zero for the precopy-only strategies).
    pub demand_fetch_pages: u64,
    /// Bytes moved by demand fetches across completed migrations.
    pub demand_fetch_bytes: u64,
    /// Pages pushed by background write-back across completed migrations.
    pub writeback_pages: u64,
    /// Bytes pushed by background write-back across completed migrations.
    pub writeback_bytes: u64,
    /// High-water mark of capture-queued packets on any single host.
    pub peak_queued_packets: u64,
    /// High-water mark of capture-queued payload bytes on any single host.
    pub peak_queued_bytes: u64,
    /// UDP datagrams shed under capture-queue pressure (cluster total).
    pub shed_udp: u64,
    /// Wall-clock milliseconds for the measured window.
    pub wall_ms: f64,
    /// Wall-clock milliseconds per simulated second.
    pub wall_ms_per_sim_s: f64,
    /// Dispatched events per wall-clock second.
    pub events_per_sec: f64,
    /// Stack deliveries per wall-clock second (the cross-tree throughput
    /// figure; see `deliveries`).
    pub deliveries_per_sec: f64,
}

impl ScaleCell {
    /// A string over every deterministic field — identical for two runs of
    /// the same config on any machine; wall-clock fields are excluded.
    pub fn det_fingerprint(&self) -> String {
        let phases: Vec<String> = self
            .phase_us
            .iter()
            .map(|(name, us)| format!("{name}={us}"))
            .collect();
        format!(
            "n{} c{} m{} s{} seed{:#x} strat[{}] aoi={}: sim_us={} events={} deliveries={} usercmds={} route_errors={} \
             started={} rejected={} completed={} aborted={} freeze_max={} total_max={} \
             df={}p/{}b wb={}p/{}b \
             peak_pkts={} peak_bytes={} shed_udp={} clamped={} phases=[{}]",
            self.cfg.nodes,
            self.cfg.clients,
            self.cfg.migrations,
            self.cfg.run_secs,
            self.cfg.seed,
            self.cfg.strategy,
            self.cfg.aoi,
            self.sim_us,
            self.events,
            self.deliveries,
            self.usercmds,
            self.route_errors,
            self.migrations_started,
            self.migrations_rejected,
            self.migrations_completed,
            self.migrations_aborted,
            self.freeze_us_max,
            self.total_us_max,
            self.demand_fetch_pages,
            self.demand_fetch_bytes,
            self.writeback_pages,
            self.writeback_bytes,
            self.peak_queued_packets,
            self.peak_queued_bytes,
            self.shed_udp,
            self.sched_clamped,
            phases.join(","),
        )
    }

    /// The JSON row key pair: `("<nodes>x<clients>", threads)`. Two rows of
    /// one sweep may share the cell string when they sweep thread counts,
    /// so comparisons must match on both.
    pub fn row_key(&self) -> (String, usize) {
        (cell_key(&self.cfg), self.threads)
    }
}

/// The worker-thread count a cell actually runs with: an explicit
/// `cfg.threads`, else `DVELM_SHARDS`, else 1.
fn resolve_threads(cfg: &ScaleConfig) -> usize {
    if cfg.threads == 0 {
        shards_from_env().unwrap_or(1)
    } else {
        cfg.threads
    }
}

/// Build the cell's world: `nodes` server nodes each running an `OaServer`
/// on its own public port, `clients` client hosts round-robin connected.
fn build_world(cfg: &ScaleConfig) -> (World, Vec<dvelm_proc::Pid>, Vec<usize>, Rc<RefCell<u64>>) {
    let mut w = World::new(WorldConfig {
        seed: cfg.seed,
        strategy: cfg.strategy,
        threads: resolve_threads(cfg),
        aoi: cfg.aoi,
        ..WorldConfig::default()
    });
    if cfg.monitored {
        w.enable_monitor();
    }
    let usercmds = Rc::new(RefCell::new(0u64));
    let mut node_hosts = Vec::with_capacity(cfg.nodes);
    let mut server_pids = Vec::with_capacity(cfg.nodes);
    let mut server_addrs = Vec::with_capacity(cfg.nodes);
    for i in 0..cfg.nodes {
        let host = w.add_server_node();
        let pid = w.spawn_process(
            host,
            "oa_server",
            512,
            4096,
            Box::new(OaServer::new(usercmds.clone())),
        );
        let addr = SockAddr::new(Ip::CLUSTER_PUBLIC, OA_PORT + i as u16);
        w.app_udp_bind(host, pid, addr);
        if cfg.aoi {
            // Server i is the zone server for zone i; its service port is
            // the zone's identity on the shared public IP.
            w.register_zone_interest(host, pid, addr.port, ZoneId(i as u32));
        }
        node_hosts.push(host);
        server_pids.push(pid);
        server_addrs.push(addr);
    }
    for c in 0..cfg.clients {
        let addr = server_addrs[c % cfg.nodes];
        let ch = w.add_client_host();
        let arrivals = Rc::new(RefCell::new(Vec::new()));
        let pid = w.spawn_process(
            ch,
            "oa_client",
            64,
            256,
            Box::new(OaClient::new(addr, arrivals)),
        );
        w.app_udp_socket(ch, pid, Some(addr));
    }
    (w, server_pids, node_hosts, usercmds)
}

/// Run one cell of the sweep.
///
/// Timeline: one simulated second of warmup (clients connect, servers
/// learn them), then the measured window of `run_secs` simulated seconds
/// plus a 100 ms drain. Migrations start 100 ms apart from the top of the
/// measured window: migration *k* moves the server of node `k % nodes` to
/// the node half a ring away.
pub fn run_scale(cfg: &ScaleConfig) -> ScaleCell {
    assert!(
        cfg.nodes >= 2,
        "migrations need a distinct destination node"
    );
    let (mut w, server_pids, node_hosts, usercmds) = build_world(cfg);
    let warmup_end = SimTime::from_secs(1);
    w.run_until(warmup_end);

    let events_before = w.sched.dispatched();
    let rx_before: u64 = w.hosts.iter().map(|h| h.stack.stats().rx_total).sum();
    let started_wall = std::time::Instant::now();

    let mut migrations_started = 0usize;
    let mut migrations_rejected = 0usize;
    // Clamp the stagger so every migration starts inside the measured
    // window even when the cell asks for more migrations than 100 ms slots.
    let stagger = MIGRATION_STAGGER_US.min(cfg.run_secs * SECOND / cfg.migrations.max(1) as u64);
    for k in 0..cfg.migrations {
        w.run_until(warmup_end + k as u64 * stagger);
        let src = k % cfg.nodes;
        let dst = node_hosts[(src + cfg.nodes / 2) % cfg.nodes];
        match w.begin_migration(server_pids[src], dst, cfg.strategy) {
            Some(_) => migrations_started += 1,
            None => migrations_rejected += 1,
        }
    }
    w.run_until(warmup_end + cfg.run_secs * SECOND);
    w.run_for(DRAIN_US);
    if cfg.monitored {
        w.monitor_sweep();
        assert!(
            w.violations().is_empty(),
            "fault-free scale cell must hold every invariant \
             (cell {}x{}, seed {:#x}): {:?}",
            cfg.nodes,
            cfg.clients,
            cfg.seed,
            w.violations()
        );
    }

    let wall_ms = started_wall.elapsed().as_secs_f64() * 1000.0;
    let events = w.sched.dispatched() - events_before;
    let deliveries = w
        .hosts
        .iter()
        .map(|h| h.stack.stats().rx_total)
        .sum::<u64>()
        - rx_before;
    let sim_us = cfg.run_secs * SECOND + DRAIN_US;

    let mut freeze_us_max = 0u64;
    let mut total_us_max = 0u64;
    let mut migrations_completed = 0usize;
    let mut migrations_aborted = 0usize;
    let mut demand_fetch_pages = 0u64;
    let mut demand_fetch_bytes = 0u64;
    let mut writeback_pages = 0u64;
    let mut writeback_bytes = 0u64;
    let mut phase_us: BTreeMap<&'static str, u64> = BTreeMap::new();
    for r in &w.reports {
        if r.is_aborted() {
            migrations_aborted += 1;
            continue;
        }
        migrations_completed += 1;
        freeze_us_max = freeze_us_max.max(r.freeze_us());
        total_us_max = total_us_max.max(r.total_us());
        demand_fetch_pages += r.demand_fetch_pages;
        demand_fetch_bytes += r.demand_fetch_bytes;
        writeback_pages += r.writeback_pages;
        writeback_bytes += r.writeback_bytes;
        // `phase_log` records entry instants; a phase lasts until the next
        // entry, the last one until the process resumed.
        for pair in r.phase_log.windows(2) {
            *phase_us.entry(pair[0].0).or_insert(0) += pair[1].1.saturating_since(pair[0].1);
        }
        if let Some(&(name, at)) = r.phase_log.last() {
            *phase_us.entry(name).or_insert(0) += r.resumed_at.saturating_since(at);
        }
    }

    let mut peak_queued_packets = 0u64;
    let mut peak_queued_bytes = 0u64;
    let mut shed_udp = 0u64;
    for h in &w.hosts {
        let s = h.stack.capture.stats();
        peak_queued_packets = peak_queued_packets.max(s.peak_queued_packets);
        peak_queued_bytes = peak_queued_bytes.max(s.peak_queued_bytes);
        shed_udp += s.shed_udp;
    }

    let sched_clamped = w.sched.stats().clamped;
    assert_eq!(
        sched_clamped, 0,
        "fault-free trajectory must not clamp past-instant schedules \
         (cell {}x{}, seed {:#x})",
        cfg.nodes, cfg.clients, cfg.seed
    );

    let sim_secs = sim_us as f64 / SECOND as f64;
    let usercmds = *usercmds.borrow();
    ScaleCell {
        cfg: cfg.clone(),
        threads: resolve_threads(cfg),
        sched_clamped,
        sim_us,
        events,
        deliveries,
        usercmds,
        route_errors: w.route_errors(),
        migrations_started,
        migrations_rejected,
        migrations_completed,
        migrations_aborted,
        freeze_us_max,
        total_us_max,
        demand_fetch_pages,
        demand_fetch_bytes,
        writeback_pages,
        writeback_bytes,
        phase_us,
        peak_queued_packets,
        peak_queued_bytes,
        shed_udp,
        wall_ms,
        wall_ms_per_sim_s: wall_ms / sim_secs,
        events_per_sec: events as f64 / (wall_ms / 1000.0).max(1e-9),
        deliveries_per_sec: deliveries as f64 / (wall_ms / 1000.0).max(1e-9),
    }
}

fn cell_key(cfg: &ScaleConfig) -> String {
    // Default-configuration cells keep their historical key so committed
    // baselines compare like-for-like; strategy-sweep and AOI rows get a
    // distinct key (rows are matched on `(cell, threads)`).
    let mut key = if cfg.strategy == Strategy::IncrementalCollective {
        format!("{}x{}", cfg.nodes, cfg.clients)
    } else {
        format!(
            "{}x{}@{}",
            cfg.nodes,
            cfg.clients,
            cfg.strategy.to_string().replace(' ', "-")
        )
    };
    if cfg.aoi {
        key.push_str("@aoi");
    }
    key
}

/// Physical parallelism available on this machine (1 when unknown).
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// Render `BENCH_scale.json`: throughput metrics per cell, plus the
/// pre-optimization baseline and the measured speedup when the sweep
/// contains the 64-node/1000-client cell.
pub fn scale_json(cells: &[ScaleCell], baseline: Option<&Baseline>) -> Json {
    let mut doc = Json::obj();
    doc.set("bench", Json::Str("scale".into()));
    doc.set("schema_version", Json::Num(3.0));
    // Physical cores on the measuring host: thread-sweep rows are only
    // meaningful speedup evidence when host_cores exceeds the row's thread
    // count, so consumers (the `--compare-threads` gate, humans reading the
    // committed file) need it recorded next to the wall-clock numbers.
    doc.set("host_cores", Json::Num(host_cores() as f64));
    if let Some(b) = baseline {
        let mut base = Json::obj();
        base.set("label", Json::Str(b.label.clone()));
        base.set("cell", Json::Str(b.cell.clone()));
        base.set("events_per_sec", Json::Num(round2(b.events_per_sec)));
        base.set(
            "deliveries_per_sec",
            Json::Num(round2(b.deliveries_per_sec)),
        );
        base.set("wall_ms_per_sim_s", Json::Num(round2(b.wall_ms_per_sim_s)));
        // The embedded baseline predates the parallel core, so it compares
        // against the single-thread row of its cell.
        let fresh = cells
            .iter()
            .find(|c| cell_key(&c.cfg) == b.cell && c.threads == 1);
        if let Some(fresh) = fresh.filter(|_| b.deliveries_per_sec > 0.0) {
            base.set(
                "speedup",
                Json::Num(round2(fresh.deliveries_per_sec / b.deliveries_per_sec)),
            );
        }
        if let Some(fresh) =
            fresh.filter(|f| b.wall_ms_per_sim_s > 0.0 && f.wall_ms_per_sim_s > 0.0)
        {
            base.set(
                "sim_throughput_speedup",
                Json::Num(round2(b.wall_ms_per_sim_s / fresh.wall_ms_per_sim_s)),
            );
        }
        doc.set("baseline", base);
    }
    let mut arr = Vec::with_capacity(cells.len());
    for c in cells {
        let mut o = Json::obj();
        o.set("cell", Json::Str(cell_key(&c.cfg)));
        o.set("nodes", Json::Num(c.cfg.nodes as f64));
        o.set("clients", Json::Num(c.cfg.clients as f64));
        o.set("migrations", Json::Num(c.cfg.migrations as f64));
        o.set("run_secs", Json::Num(c.cfg.run_secs as f64));
        o.set("seed", Json::Num(c.cfg.seed as f64));
        o.set("strategy", Json::Str(c.cfg.strategy.to_string()));
        o.set("aoi", Json::Bool(c.cfg.aoi));
        o.set("threads", Json::Num(c.threads as f64));
        o.set("sched_clamped", Json::Num(c.sched_clamped as f64));
        o.set("sim_us", Json::Num(c.sim_us as f64));
        o.set("events", Json::Num(c.events as f64));
        o.set("events_per_sec", Json::Num(round2(c.events_per_sec)));
        o.set("deliveries", Json::Num(c.deliveries as f64));
        o.set(
            "deliveries_per_sec",
            Json::Num(round2(c.deliveries_per_sec)),
        );
        o.set("wall_ms", Json::Num(round2(c.wall_ms)));
        o.set("wall_ms_per_sim_s", Json::Num(round2(c.wall_ms_per_sim_s)));
        o.set("usercmds", Json::Num(c.usercmds as f64));
        o.set("route_errors", Json::Num(c.route_errors as f64));
        o.set("migrations_started", Json::Num(c.migrations_started as f64));
        o.set(
            "migrations_rejected",
            Json::Num(c.migrations_rejected as f64),
        );
        o.set(
            "migrations_completed",
            Json::Num(c.migrations_completed as f64),
        );
        o.set("migrations_aborted", Json::Num(c.migrations_aborted as f64));
        o.set("demand_fetch_pages", Json::Num(c.demand_fetch_pages as f64));
        o.set("demand_fetch_bytes", Json::Num(c.demand_fetch_bytes as f64));
        o.set("writeback_pages", Json::Num(c.writeback_pages as f64));
        o.set("writeback_bytes", Json::Num(c.writeback_bytes as f64));
        arr.push(o);
    }
    doc.set("cells", Json::Arr(arr));
    doc
}

/// Render `BENCH_stack.json`: stack-side metrics per cell — peak capture
/// queue depths, shed counts and per-phase migration costs.
pub fn stack_json(cells: &[ScaleCell]) -> Json {
    let mut doc = Json::obj();
    doc.set("bench", Json::Str("stack".into()));
    doc.set("schema_version", Json::Num(1.0));
    let mut arr = Vec::with_capacity(cells.len());
    for c in cells {
        let mut o = Json::obj();
        o.set("cell", Json::Str(cell_key(&c.cfg)));
        o.set("nodes", Json::Num(c.cfg.nodes as f64));
        o.set("clients", Json::Num(c.cfg.clients as f64));
        o.set(
            "peak_queued_packets",
            Json::Num(c.peak_queued_packets as f64),
        );
        o.set("peak_queued_bytes", Json::Num(c.peak_queued_bytes as f64));
        o.set("shed_udp", Json::Num(c.shed_udp as f64));
        o.set("freeze_us_max", Json::Num(c.freeze_us_max as f64));
        o.set("total_us_max", Json::Num(c.total_us_max as f64));
        let mut phases = Json::obj();
        for (name, us) in &c.phase_us {
            phases.set(name, Json::Num(*us as f64));
        }
        o.set("phase_us", phases);
        arr.push(o);
    }
    doc.set("cells", Json::Arr(arr));
    doc
}

/// The pre-optimization reference point embedded in `BENCH_scale.json`.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// Where the numbers came from (commit, build flags).
    pub label: String,
    /// Which cell they measure, as `"<nodes>x<clients>"`.
    pub cell: String,
    /// Events per wall-clock second at that cell.
    pub events_per_sec: f64,
    /// Stack deliveries per wall-clock second at that cell (the cross-tree
    /// throughput figure the speedup is computed from).
    pub deliveries_per_sec: f64,
    /// Wall-clock milliseconds per simulated second at that cell.
    pub wall_ms_per_sim_s: f64,
}

/// A JSON row's `threads` column; pre-parallel-core files have no such
/// key, and those rows were all single-threaded.
fn row_threads(row: &Json) -> u64 {
    row.get("threads")
        .and_then(Json::as_f64)
        .map_or(1, |t| t as u64)
}

/// What [`compare_bench`] found: `problems` fail the gate; `warnings` are
/// schema-skew notes (a metric key absent on one side) that skip the
/// affected comparison without failing the run.
#[derive(Debug, Default)]
pub struct CompareOutcome {
    pub problems: Vec<String>,
    pub warnings: Vec<String>,
}

/// Compare a fresh `BENCH_scale.json` against a committed baseline file.
///
/// Only wall-clock throughput metrics are compared (the deterministic
/// fields are covered by the smoke test); rows match on `cell` *and*
/// `threads` (absent in pre-parallel files means 1), and a row regresses
/// when it is more than `tolerance`× slower than the baseline.
///
/// Schema skew is expected in both directions — an old baseline predating
/// a newly-added metric key, or a fresh file measured by an older harness —
/// so a metric missing from *either* side skips that one comparison with a
/// warning instead of failing the gate. A baseline *row* with no fresh
/// counterpart is still a hard failure: cells only disappear when someone
/// dropped them from the trajectory.
pub fn compare_bench(baseline: &Json, fresh: &Json, tolerance: f64) -> CompareOutcome {
    let mut out = CompareOutcome::default();
    let base_cells = baseline.get("cells").and_then(Json::as_arr).unwrap_or(&[]);
    let fresh_cells = fresh.get("cells").and_then(Json::as_arr).unwrap_or(&[]);
    if base_cells.is_empty() {
        out.problems.push("baseline has no cells".into());
    }
    for b in base_cells {
        let key = b.get("cell").and_then(Json::as_str).unwrap_or("?");
        let threads = row_threads(b);
        let Some(f) = fresh_cells.iter().find(|f| {
            f.get("cell").and_then(Json::as_str) == Some(key) && row_threads(f) == threads
        }) else {
            out.problems.push(format!(
                "cell {key} (threads={threads}): missing from fresh results"
            ));
            continue;
        };
        let num = |j: &Json, k: &str| j.get(k).and_then(Json::as_f64);
        match (num(b, "events_per_sec"), num(f, "events_per_sec")) {
            (Some(base), Some(fresh_v)) if fresh_v * tolerance < base => out.problems.push(format!(
                "cell {key}: events_per_sec {fresh_v:.0} is more than {tolerance}x below baseline {base:.0}"
            )),
            (Some(_), Some(_)) => {}
            (base, fresh_v) => out.warnings.push(skew_warning(key, "events_per_sec", base, fresh_v)),
        }
        match (num(b, "wall_ms_per_sim_s"), num(f, "wall_ms_per_sim_s")) {
            (Some(base), Some(fresh_v)) if fresh_v > base * tolerance => out.problems.push(format!(
                "cell {key}: wall_ms_per_sim_s {fresh_v:.1} is more than {tolerance}x above baseline {base:.1}"
            )),
            (Some(_), Some(_)) => {}
            (base, fresh_v) => out.warnings.push(skew_warning(key, "wall_ms_per_sim_s", base, fresh_v)),
        }
    }
    out
}

/// The skip-with-warning message for a metric key absent on one side of a
/// [`compare_bench`] row (schema skew between harness generations).
fn skew_warning(key: &str, metric: &str, base: Option<f64>, fresh: Option<f64>) -> String {
    let side = match (base, fresh) {
        (None, None) => "both files",
        (None, Some(_)) => "baseline",
        _ => "fresh results",
    };
    format!("cell {key}: {metric} missing from {side}; skipping (schema skew)")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_cell(nodes: usize, clients: usize, eps: f64, wall_per_s: f64) -> ScaleCell {
        fake_cell_threads(nodes, clients, 1, eps, wall_per_s)
    }

    fn fake_cell_threads(
        nodes: usize,
        clients: usize,
        threads: usize,
        eps: f64,
        wall_per_s: f64,
    ) -> ScaleCell {
        ScaleCell {
            cfg: ScaleConfig {
                nodes,
                clients,
                migrations: 1,
                run_secs: 1,
                seed: 1,
                threads,
                monitored: false,
                strategy: Strategy::IncrementalCollective,
                aoi: false,
            },
            threads,
            sched_clamped: 0,
            sim_us: SECOND,
            events: 1000,
            deliveries: 900,
            usercmds: 10,
            route_errors: 0,
            migrations_started: 1,
            migrations_rejected: 0,
            migrations_completed: 1,
            migrations_aborted: 0,
            freeze_us_max: 100,
            total_us_max: 500,
            phase_us: BTreeMap::new(),
            demand_fetch_pages: 0,
            demand_fetch_bytes: 0,
            writeback_pages: 0,
            writeback_bytes: 0,
            peak_queued_packets: 4,
            peak_queued_bytes: 1024,
            shed_udp: 0,
            wall_ms: 1000.0 * wall_per_s / 1000.0,
            wall_ms_per_sim_s: wall_per_s,
            events_per_sec: eps,
            deliveries_per_sec: eps,
        }
    }

    #[test]
    fn compare_passes_within_tolerance_and_fails_beyond() {
        let base = scale_json(&[fake_cell(4, 100, 1000.0, 50.0)], None);
        let ok = scale_json(&[fake_cell(4, 100, 600.0, 90.0)], None);
        assert!(compare_bench(&base, &ok, 2.0).problems.is_empty());
        let slow = scale_json(&[fake_cell(4, 100, 400.0, 90.0)], None);
        assert_eq!(compare_bench(&base, &slow, 2.0).problems.len(), 1);
        let crawl = scale_json(&[fake_cell(4, 100, 400.0, 150.0)], None);
        assert_eq!(compare_bench(&base, &crawl, 2.0).problems.len(), 2);
    }

    #[test]
    fn compare_flags_missing_cells() {
        let base = scale_json(
            &[
                fake_cell(4, 100, 1000.0, 50.0),
                fake_cell(16, 1000, 1000.0, 50.0),
            ],
            None,
        );
        let fresh = scale_json(&[fake_cell(4, 100, 1000.0, 50.0)], None);
        assert_eq!(compare_bench(&base, &fresh, 2.0).problems.len(), 1);
    }

    /// Strip a metric key from every cell row of a rendered document,
    /// simulating a file written by a harness generation without it.
    fn without_key(doc: &Json, key: &str) -> Json {
        let mut doc = doc.clone();
        if let Json::Obj(fields) = &mut doc {
            for (k, v) in fields.iter_mut() {
                if k == "cells" {
                    if let Json::Arr(rows) = v {
                        for row in rows {
                            if let Json::Obj(cols) = row {
                                cols.retain(|(c, _)| c != key);
                            }
                        }
                    }
                }
            }
        }
        doc
    }

    #[test]
    fn compare_skips_missing_metric_keys_with_warning_both_directions() {
        let base = scale_json(&[fake_cell(4, 100, 1000.0, 50.0)], None);
        let fresh = scale_json(&[fake_cell(4, 100, 1000.0, 50.0)], None);
        // Old baseline predating a newly-added key: skip, warn, pass.
        let old_base = without_key(&base, "wall_ms_per_sim_s");
        let out = compare_bench(&old_base, &fresh, 2.0);
        assert!(out.problems.is_empty(), "{:?}", out.problems);
        assert_eq!(out.warnings.len(), 1);
        assert!(out.warnings[0].contains("wall_ms_per_sim_s missing from baseline"));
        // Fresh file from an older harness: same skip, other side named.
        let old_fresh = without_key(&fresh, "wall_ms_per_sim_s");
        let out = compare_bench(&base, &old_fresh, 2.0);
        assert!(out.problems.is_empty(), "{:?}", out.problems);
        assert_eq!(out.warnings.len(), 1);
        assert!(out.warnings[0].contains("wall_ms_per_sim_s missing from fresh results"));
        // The still-present metric is still gated: a regression on
        // events_per_sec fails even while the other key skips.
        let slow = scale_json(&[fake_cell(4, 100, 100.0, 50.0)], None);
        let out = compare_bench(&old_base, &slow, 2.0);
        assert_eq!(out.problems.len(), 1);
        assert!(out.problems[0].contains("events_per_sec"));
    }

    #[test]
    fn compare_matches_rows_by_cell_and_threads() {
        // Two rows share the cell string but sweep thread counts: the slow
        // 4-thread fresh row must be charged against the 4-thread baseline
        // row, not hide behind the fast 1-thread one.
        let base = scale_json(
            &[
                fake_cell_threads(64, 1000, 1, 1000.0, 50.0),
                fake_cell_threads(64, 1000, 4, 1000.0, 50.0),
            ],
            None,
        );
        let ok = scale_json(
            &[
                fake_cell_threads(64, 1000, 1, 1000.0, 50.0),
                fake_cell_threads(64, 1000, 4, 1000.0, 50.0),
            ],
            None,
        );
        assert!(compare_bench(&base, &ok, 2.0).problems.is_empty());
        let slow4 = scale_json(
            &[
                fake_cell_threads(64, 1000, 1, 1000.0, 50.0),
                fake_cell_threads(64, 1000, 4, 100.0, 500.0),
            ],
            None,
        );
        assert_eq!(compare_bench(&base, &slow4, 2.0).problems.len(), 2);
        // A fresh file missing the 4-thread row is flagged even though the
        // 1-thread row with the same cell string is present.
        let only1 = scale_json(&[fake_cell_threads(64, 1000, 1, 1000.0, 50.0)], None);
        let problems = compare_bench(&base, &only1, 2.0).problems;
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("threads=4"), "{problems:?}");
    }

    #[test]
    fn fingerprint_ignores_threads_but_counts_clamps() {
        let a = fake_cell_threads(4, 100, 1, 1000.0, 50.0);
        let b = fake_cell_threads(4, 100, 8, 2000.0, 25.0);
        assert_eq!(a.det_fingerprint(), b.det_fingerprint());
        let mut c = fake_cell_threads(4, 100, 1, 1000.0, 50.0);
        c.sched_clamped = 3;
        assert_ne!(a.det_fingerprint(), c.det_fingerprint());
    }

    #[test]
    fn scale_json_embeds_baseline_speedup() {
        let b = Baseline {
            label: "test".into(),
            cell: "4x100".into(),
            events_per_sec: 500.0,
            deliveries_per_sec: 500.0,
            wall_ms_per_sim_s: 100.0,
        };
        let doc = scale_json(&[fake_cell(4, 100, 1000.0, 50.0)], Some(&b));
        let speedup = doc
            .get("baseline")
            .and_then(|b| b.get("speedup"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!((speedup - 2.0).abs() < 1e-9);
    }
}
