//! Shared experiment-harness code for the `fig*` binaries.
//!
//! Every figure of the paper's evaluation section has a binary that
//! regenerates it (see DESIGN.md §4); the sweep logic lives here so the
//! `all_figures` binary can share results between Fig. 5b and Fig. 5c
//! (they come from the same runs).

pub mod json;
pub mod scale;

use dvelm_dve::{run_flow_sim, FlowSimConfig, FlowSimResult};
use dvelm_dve::{run_freeze_bench, FreezeBenchConfig, FreezeBenchResult};
use dvelm_metrics::{AsciiChart, Table, TimeSeries};
use dvelm_migrate::Strategy;
use dvelm_net::Port;
use dvelm_openarena::{
    fig4_series, migration_delay_us, run_scenario, snapshot_gaps_ms, OaScenario,
};
use dvelm_sim::SimTime;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;

/// Where the figure outputs are written.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("DVELM_RESULTS_DIR").unwrap_or_else(|_| {
        format!(
            "{}/EXPERIMENTS-results",
            env!("CARGO_MANIFEST_DIR").replace("/crates/bench", "")
        )
    });
    let p = PathBuf::from(dir);
    std::fs::create_dir_all(&p).expect("create results dir");
    p
}

/// Print to stdout and persist under the results directory.
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    let path = results_dir().join(format!("{name}.txt"));
    std::fs::write(&path, content).expect("write figure output");
    eprintln!("[saved {}]", path.display());
}

// ----------------------------------------------------------------------
// Fig. 4 / §VI-B: OpenArena packet delay
// ----------------------------------------------------------------------

/// Run the OpenArena experiment and render Fig. 4.
///
/// Like the paper's illustrative trace, the run is chosen so the migration
/// freeze lands mid-snapshot-cycle (the worst case for a client): the
/// migration instant is scanned across one 50 ms cycle and the trace with
/// the largest imposed delay is reported.
pub fn fig4(n_clients: usize) -> String {
    let port = Port(dvelm_openarena::apps::OA_PORT);
    let (r, report) = (0..20u64)
        .map(|i| {
            let scenario = OaScenario {
                n_clients,
                migrate_at: SimTime::from_secs(5) + i * 2_500,
                ..OaScenario::default()
            };
            let r = run_scenario(&scenario);
            let report = r.report.clone().expect("migration ran");
            (r, report)
        })
        .max_by_key(|(r, _)| {
            migration_delay_us(&r.packet_log, port, r.src_host, r.dst_host).unwrap_or(0)
        })
        .expect("at least one run");

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 4 — Packet delay due to migration (OpenArena server, {n_clients} clients)\n"
    );
    let _ = writeln!(
        out,
        "server freeze time: {:.1} ms   (paper: ≈20 ms)",
        report.freeze_us() as f64 / 1000.0
    );
    if let Some(d) = migration_delay_us(&r.packet_log, port, r.src_host, r.dst_host) {
        let _ = writeln!(
            out,
            "gap between last source and first destination packet: {:.1} ms",
            d as f64 / 1000.0
        );
        let extra = d as f64 / 1000.0 - 50.0;
        let _ = writeln!(
            out,
            "imposed delay vs the expected 50 ms cadence: {extra:.1} ms   (paper: ≈25 ms)"
        );
    }
    let gaps = snapshot_gaps_ms(&r.packet_log, port, 10_000);
    let regular = gaps.iter().filter(|g| (**g - 50.0).abs() < 5.0).count();
    let max_gap = gaps.iter().cloned().fold(0.0f64, f64::max);
    let _ = writeln!(
        out,
        "snapshot cadence: {regular}/{} bursts at 50 ms ± 5 ms; largest gap {max_gap:.1} ms\n",
        gaps.len()
    );

    // The packet-number-vs-time scatter around the migration.
    let center = report.frozen_at;
    let pts = fig4_series(&r.packet_log, port, r.dst_host, center, 150_000);
    let mut src_series = TimeSeries::new("source node");
    let mut dst_series = TimeSeries::new("destination node");
    for p in &pts {
        if p.from_dst {
            dst_series.push_at_secs(p.t_ms, p.packet_no as f64);
        } else {
            src_series.push_at_secs(p.t_ms, p.packet_no as f64);
        }
    }
    let mut chart = AsciiChart::new(
        "packet number vs time elapsed around the migration (ms)",
        72,
        18,
    )
    .labels("time (ms)", "packet number");
    chart.add(src_series);
    chart.add(dst_series);
    let _ = writeln!(out, "{}", chart.render());
    out
}

// ----------------------------------------------------------------------
// Fig. 5b + 5c: freeze time / freeze bytes vs connection count
// ----------------------------------------------------------------------

/// One sweep cell.
#[derive(Debug, Clone)]
pub struct SweepCell {
    pub connections: usize,
    pub strategy: Strategy,
    pub result: FreezeBenchResult,
}

/// Run the (connections × strategy) sweep, distributing runs across scoped
/// worker threads (each run is an independent deterministic world).
pub fn freeze_sweep(connections: &[usize], repetitions: usize, workers: usize) -> Vec<SweepCell> {
    let mut jobs: Vec<(usize, Strategy)> = Vec::new();
    for &c in connections {
        for s in Strategy::ALL {
            jobs.push((c, s));
        }
    }
    let jobs = Mutex::new(jobs);
    let results = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..workers.max(1) {
            scope.spawn(|| loop {
                let job = jobs.lock().unwrap().pop();
                let Some((connections, strategy)) = job else {
                    break;
                };
                let r = run_freeze_bench(&FreezeBenchConfig {
                    connections,
                    strategy,
                    repetitions,
                    seed: 0xF16_5BC,
                    monitored: false,
                });
                results.lock().unwrap().push(SweepCell {
                    connections,
                    strategy,
                    result: r,
                });
            });
        }
    });
    let mut cells = results.into_inner().expect("sweep worker panicked");
    cells.sort_by_key(|c| (c.connections, format!("{}", c.strategy)));
    cells
}

fn strategy_column(cells: &[SweepCell], conns: usize, s: Strategy) -> &SweepCell {
    cells
        .iter()
        .find(|c| c.connections == conns && c.strategy == s)
        .expect("sweep covers the full grid")
}

/// Render Fig. 5b from sweep results.
pub fn fig5b(cells: &[SweepCell], connections: &[usize]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 5b — Worst-case process freeze time (ms) vs TCP connections\n"
    );
    let mut t = Table::new(&[
        "connections",
        "iterative",
        "collective",
        "incremental collective",
    ]);
    for &c in connections {
        let row: Vec<String> = std::iter::once(c.to_string())
            .chain(Strategy::ALL.iter().map(|s| {
                format!(
                    "{:.1}",
                    strategy_column(cells, c, *s).result.worst_freeze_us as f64 / 1000.0
                )
            }))
            .collect();
        t.row(&row);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "paper shape: iterative grows ~linearly to ≈180 ms at 1024; collective ≈65 ms;\n\
         incremental collective stays below 40 ms even beyond 1000 connections."
    );
    out
}

/// Render Fig. 5c from sweep results.
pub fn fig5c(cells: &[SweepCell], connections: &[usize]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 5c — Socket data transferred during the freeze phase vs TCP connections\n"
    );
    let mut t = Table::new(&[
        "connections",
        "iterative/collective (KB)",
        "incremental collective (KB)",
    ]);
    for &c in connections {
        let full = strategy_column(cells, c, Strategy::Collective)
            .result
            .worst_freeze_socket_bytes;
        let inc = strategy_column(cells, c, Strategy::IncrementalCollective)
            .result
            .worst_freeze_socket_bytes;
        t.row(&[
            c.to_string(),
            format!("{:.0}", full as f64 / 1024.0),
            format!("{:.0}", inc as f64 / 1024.0),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "paper shape: full records grow to ≈3.5 MB at 1024 connections; the incremental\n\
         tracker ships roughly an order of magnitude less."
    );
    out
}

// ----------------------------------------------------------------------
// Fig. 5d/5e/5f: the 900 s DVE load-balancing experiment
// ----------------------------------------------------------------------

/// Render the Fig. 5a header (initial partitioning) — context for 5d/e/f.
pub fn fig5a_header() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 5a — initial partitioning: 10×10 zones, node i hosts rows 2i..2i+1 (20 zone\n\
         servers each); clients from the middle rows drift to the up-left and down-right\n\
         corners over the 15-minute run.\n"
    );
    out
}

fn render_node_chart(title: &str, series: &[TimeSeries], y: (f64, f64), y_label: &str) -> String {
    let mut chart = AsciiChart::new(title, 72, 16).labels("simulation time (s)", y_label);
    chart = chart.y_range(y.0, y.1);
    for s in series {
        chart.add(s.clone());
    }
    chart.render()
}

/// Run the flow-level experiment once.
pub fn run_dve(lb_enabled: bool) -> FlowSimResult {
    run_flow_sim(&FlowSimConfig {
        lb_enabled,
        ..FlowSimConfig::default()
    })
}

/// Render Fig. 5e (no LB) or Fig. 5f (LB) from a run.
pub fn fig5ef(r: &FlowSimResult, lb_enabled: bool) -> String {
    let mut out = String::new();
    let (name, paper) = if lb_enabled {
        (
            "Fig. 5f — CPU consumption per node, load balancing ENABLED",
            "paper shape: all five nodes stay within a narrow band (~75-95%)",
        )
    } else {
        (
            "Fig. 5e — CPU consumption per node, load balancing DISABLED",
            "paper shape: node1/node5 saturate above 95%, node3/node4 fall below 65%",
        )
    };
    let _ = writeln!(out, "{name}\n");
    let _ = writeln!(
        out,
        "{}",
        render_node_chart(name, &r.cpu, (50.0, 100.0), "CPU (%)")
    );
    let mut t = Table::new(&["node", "t=0s", "t=300s", "t=600s", "t=900s"]);
    for s in &r.cpu {
        t.row(&[
            s.name.clone(),
            format!("{:.1}", s.at(1.0).unwrap_or(f64::NAN)),
            format!("{:.1}", s.at(300.0).unwrap_or(f64::NAN)),
            format!("{:.1}", s.at(600.0).unwrap_or(f64::NAN)),
            format!("{:.1}", s.at(899.0).unwrap_or(f64::NAN)),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(
        out,
        "mean spread over last 300 s: {:.1}% CPU",
        r.mean_spread(600.0, 900.0)
    );
    let _ = writeln!(out, "{paper}");
    out
}

/// Render Fig. 5d (process distribution with LB) from a run.
pub fn fig5d(r: &FlowSimResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 5d — zone-server process distribution among nodes, load balancing enabled\n"
    );
    out.push_str(&fig5a_header());
    let _ = writeln!(
        out,
        "{}",
        render_node_chart("processes per node", &r.procs, (10.0, 40.0), "zone servers")
    );
    let mut t = Table::new(&["node", "t=0s", "t=450s", "t=900s"]);
    for s in &r.procs {
        t.row(&[
            s.name.clone(),
            format!("{:.0}", s.at(1.0).unwrap_or(f64::NAN)),
            format!("{:.0}", s.at(450.0).unwrap_or(f64::NAN)),
            format!("{:.0}", s.at(899.0).unwrap_or(f64::NAN)),
        ]);
    }
    let _ = writeln!(out, "{}", t.render());
    let _ = writeln!(out, "migrations performed: {}", r.migrations.len());
    for m in r.migrations.iter().take(20) {
        let _ = writeln!(
            out,
            "  t={:>5.0}s  zone({},{})  node{} → node{}",
            m.at_s,
            m.zone.row(),
            m.zone.col(),
            m.from + 1,
            m.to + 1
        );
    }
    if r.migrations.len() > 20 {
        let _ = writeln!(out, "  … {} more", r.migrations.len() - 20);
    }
    let _ = writeln!(
        out,
        "\npaper shape: node1/node5 drop toward ~13-15 processes, node3/node4 rise toward\n\
         ~25-28, starting once the imbalance crosses the transfer-policy threshold."
    );
    out
}

/// The migration-time instant used to centre Fig. 4's window.
pub fn fig4_center(report_frozen_at: SimTime) -> SimTime {
    report_frozen_at
}
