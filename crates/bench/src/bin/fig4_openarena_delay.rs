//! Regenerates Fig. 4: packet delay due to migration (OpenArena server,
//! 24 clients) plus the §VI-B headline freeze time.

fn main() {
    let out = dvelm_bench::fig4(24);
    dvelm_bench::emit("fig4_openarena_delay", &out);
}
