//! Regenerates Fig. 5c: socket data transferred during the freeze phase,
//! 16…1024 connections.

fn main() {
    let conns: Vec<usize> = {
        let args: Vec<usize> = std::env::args()
            .skip(1)
            .filter_map(|a| a.parse().ok())
            .collect();
        if args.is_empty() {
            vec![16, 32, 64, 128, 256, 512, 1024]
        } else {
            args
        }
    };
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let cells = dvelm_bench::freeze_sweep(&conns, 3, workers);
    let out = dvelm_bench::fig5c(&cells, &conns);
    dvelm_bench::emit("fig5c_freeze_bytes", &out);
}
