//! The motivating comparison of §I: OS-level live migration vs the
//! application-layer zone-handoff baseline, on the identical 900 s DVE
//! workload.

use dvelm_dve::{run_app_layer_sim, run_flow_sim, AppLayerConfig, FlowSimConfig};
use dvelm_metrics::Table;

fn main() {
    let shared = FlowSimConfig {
        lb_enabled: true,
        ..FlowSimConfig::default()
    };
    let no_lb = run_flow_sim(&FlowSimConfig {
        lb_enabled: false,
        ..shared.clone()
    });
    let os = run_flow_sim(&shared);
    let app = run_app_layer_sim(&shared, &AppLayerConfig::default());

    // OS-level client interruption: clients of each migrated zone are frozen
    // for the process freeze time. Upper-bound with 50 ms and 300 clients.
    let os_interruption = os.migrations.len() as f64 * 300.0 * 0.050;

    let mut out = String::new();
    out.push_str(
        "Baseline comparison — OS-level live migration vs application-layer zone handoff\n\
         (identical workload: 10,000 clients drifting to the corners over 900 s)\n\n",
    );
    let mut t = Table::new(&[
        "metric",
        "no balancing",
        "app-layer handoff",
        "OS-level migration",
    ]);
    t.row(&[
        "mean CPU spread, last 300 s (%)".into(),
        format!("{:.1}", no_lb.mean_spread(600.0, 900.0)),
        format!("{:.1}", app.mean_spread(600.0, 900.0)),
        format!("{:.1}", os.mean_spread(600.0, 900.0)),
    ]);
    t.row(&[
        "balancing operations".into(),
        "0".into(),
        app.handoffs.len().to_string(),
        os.migrations.len().to_string(),
    ]);
    t.row(&[
        "client interruption (client-seconds)".into(),
        "0".into(),
        format!("{:.0}", app.interruption_client_s),
        format!("≤{:.0}", os_interruption),
    ]);
    t.row(&[
        "clients forced to reconnect".into(),
        "0".into(),
        app.handoffs
            .iter()
            .map(|h| h.clients as u64)
            .sum::<u64>()
            .to_string(),
        "0".into(),
    ]);
    t.row(&[
        "destination constraint".into(),
        "-".into(),
        format!("neighboring zones only ({}x blocked)", app.blocked_steps),
        "any node".into(),
    ]);
    out.push_str(&t.render());
    out.push_str(
        "\nthe paper's §I argument, quantified: the app-layer baseline balances load too,\n\
         but every handoff disconnects an entire zone's clients (seconds each), and the\n\
         neighboring-zone constraint limits which machines can participate; OS-level\n\
         live migration moves whole zone servers in tens of milliseconds, transparently,\n\
         to any node in the cluster.\n",
    );
    dvelm_bench::emit("baseline_applayer", &out);
}
