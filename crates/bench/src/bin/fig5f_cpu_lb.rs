//! Regenerates Fig. 5f: CPU consumption per node over the 900 s DVE
//! simulation, load balancing enabled.

fn main() {
    let r = dvelm_bench::run_dve(true);
    let out = dvelm_bench::fig5ef(&r, true);
    dvelm_bench::emit("fig5f_cpu_lb", &out);
}
