//! The scale-benchmark trajectory: `BENCH_scale.json` + `BENCH_stack.json`.
//!
//! Modes:
//!
//! * no arguments — run the full default trajectory (4 → 256 nodes) and
//!   write both JSON files to the repository root (or `$DVELM_BENCH_DIR`);
//! * `--quick` — the first three cells only (what CI runs; the cells are
//!   identical to the full run's, so the committed baseline compares
//!   like-for-like);
//! * `--compare <baseline.json> <fresh.json> [tolerance]` — exit non-zero
//!   when any shared cell regresses by more than the tolerance (default
//!   2x) on a wall-clock throughput metric.

use dvelm_bench::json::Json;
use dvelm_bench::scale::{
    compare_bench, run_scale, scale_json, stack_json, Baseline, ScaleCell, ScaleConfig, SCALE_SEED,
};

/// The 64-node/1000-client cell measured once on the pre-optimization tree
/// (the parent of the commit introducing this harness; same harness source,
/// release build, idle machine). `BENCH_scale.json`'s `speedup` is the
/// fresh deliveries-per-wall-second over the baseline's, and
/// `sim_throughput_speedup` the wall-clock-per-sim-second ratio —
/// deliveries rather than raw dispatched events, because batching the
/// broadcast fan-out changed how much work one scheduler event carries.
const PRE_OPT_64X1000_EVENTS_PER_SEC: f64 = 1_524_680.0;
const PRE_OPT_64X1000_DELIVERIES_PER_SEC: f64 = 1_467_926.0;
const PRE_OPT_64X1000_WALL_MS_PER_SIM_S: f64 = 874.6;

/// The default trajectory. The first three cells double as the CI quick
/// sweep, the last is the stress cell.
fn trajectory() -> Vec<ScaleConfig> {
    let cell = |nodes, clients, migrations, run_secs| ScaleConfig {
        nodes,
        clients,
        migrations,
        run_secs,
        seed: SCALE_SEED,
    };
    vec![
        cell(4, 100, 2, 5),
        cell(16, 1000, 4, 2),
        cell(64, 1000, 8, 2),
        cell(256, 10_000, 16, 1),
    ]
}

/// Where the BENCH_*.json files go: `$DVELM_BENCH_DIR` or the repo root.
fn bench_dir() -> std::path::PathBuf {
    let dir = std::env::var("DVELM_BENCH_DIR")
        .unwrap_or_else(|_| env!("CARGO_MANIFEST_DIR").replace("/crates/bench", ""));
    let p = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&p).expect("create bench output dir");
    p
}

fn run_sweep(cfgs: &[ScaleConfig]) -> Vec<ScaleCell> {
    let mut cells = Vec::with_capacity(cfgs.len());
    for cfg in cfgs {
        eprintln!(
            "[bench_scale] nodes={} clients={} migrations={} run_secs={} ...",
            cfg.nodes, cfg.clients, cfg.migrations, cfg.run_secs
        );
        let cell = run_scale(cfg);
        eprintln!(
            "[bench_scale]   {:.0} events/s, {:.1} wall-ms per sim-s, peak queue {} pkts, \
             {} migrations completed ({} aborted, {} rejected)",
            cell.events_per_sec,
            cell.wall_ms_per_sim_s,
            cell.peak_queued_packets,
            cell.migrations_completed,
            cell.migrations_aborted,
            cell.migrations_rejected,
        );
        cells.push(cell);
    }
    cells
}

fn write_outputs(cells: &[ScaleCell]) {
    let baseline = Baseline {
        label: "pre-optimization tree, release build, same harness".into(),
        cell: "64x1000".into(),
        events_per_sec: PRE_OPT_64X1000_EVENTS_PER_SEC,
        deliveries_per_sec: PRE_OPT_64X1000_DELIVERIES_PER_SEC,
        wall_ms_per_sim_s: PRE_OPT_64X1000_WALL_MS_PER_SIM_S,
    };
    let dir = bench_dir();
    let scale_path = dir.join("BENCH_scale.json");
    let stack_path = dir.join("BENCH_stack.json");
    std::fs::write(&scale_path, scale_json(cells, Some(&baseline)).render())
        .expect("write BENCH_scale.json");
    std::fs::write(&stack_path, stack_json(cells).render()).expect("write BENCH_stack.json");
    eprintln!("[saved {}]", scale_path.display());
    eprintln!("[saved {}]", stack_path.display());
}

fn compare_mode(args: &[String]) -> ! {
    let [base_path, fresh_path, rest @ ..] = args else {
        eprintln!("usage: bench_scale --compare <baseline.json> <fresh.json> [tolerance]");
        std::process::exit(2);
    };
    let tolerance: f64 = rest.first().map_or(2.0, |t| {
        t.parse().unwrap_or_else(|_| {
            eprintln!("bad tolerance {t:?}");
            std::process::exit(2);
        })
    });
    let read_json = |path: &String| -> Json {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = read_json(base_path);
    let fresh = read_json(fresh_path);
    let problems = compare_bench(&baseline, &fresh, tolerance);
    if problems.is_empty() {
        println!("bench_scale: no regression beyond {tolerance}x against {base_path}");
        std::process::exit(0);
    }
    for p in &problems {
        eprintln!("REGRESSION: {p}");
    }
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--compare") => compare_mode(&args[1..]),
        Some("--quick") => {
            let cells = run_sweep(&trajectory()[..3]);
            write_outputs(&cells);
        }
        None => {
            let cells = run_sweep(&trajectory());
            write_outputs(&cells);
        }
        Some(other) => {
            eprintln!("unknown argument {other:?}; use --quick or --compare");
            std::process::exit(2);
        }
    }
}
