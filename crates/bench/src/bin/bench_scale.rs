//! The scale-benchmark trajectory: `BENCH_scale.json` + `BENCH_stack.json`.
//!
//! Modes:
//!
//! * no arguments — run the full default trajectory (4 → 256 nodes,
//!   with 1/2/4/8-thread rows for the two large cells) and write both
//!   JSON files to the repository root (or `$DVELM_BENCH_DIR`);
//! * `--quick` — the three small single-thread cells plus a 4-thread
//!   64x1000 row (what CI runs; the cells are identical to the full
//!   run's, so the committed baseline compares like-for-like);
//! * `--strategy` — the 4x100 cell once per migration strategy (all five,
//!   including post-copy and hybrid), recording per-strategy demand-fetch
//!   and write-back counters in strategy-qualified rows;
//! * `--aoi` — the interest-routed sweep (`@aoi` rows): 64x1000 and
//!   256x10000 under zone multicast instead of broadcast, plus the first
//!   1024-node/100k-client cell, which only AOI makes tractable;
//! * `--threads N` — the base trajectory with every cell forced to N
//!   worker threads (for measuring one thread count on a given host);
//! * `--compare <baseline.json> <fresh.json> [tolerance]` — exit non-zero
//!   when any shared `(cell, threads)` row regresses by more than the
//!   tolerance (default 2x) on a wall-clock throughput metric;
//! * `--compare-threads <fresh.json> [tolerance]` — the parallel-core
//!   gate: the 4-thread 64x1000 row must not be slower than the 1-thread
//!   row by more than the tolerance (default 1.05x). Skip-passes with a
//!   warning when the measuring host has a single core (`host_cores`),
//!   where parallel speedup is physically unattainable.

use dvelm_bench::json::Json;
use dvelm_bench::scale::{
    compare_bench, run_scale, scale_json, stack_json, Baseline, ScaleCell, ScaleConfig, SCALE_SEED,
};
use dvelm_migrate::Strategy;

/// The 64-node/1000-client cell measured once on the pre-optimization tree
/// (the parent of the commit introducing this harness; same harness source,
/// release build, idle machine). `BENCH_scale.json`'s `speedup` is the
/// fresh deliveries-per-wall-second over the baseline's, and
/// `sim_throughput_speedup` the wall-clock-per-sim-second ratio —
/// deliveries rather than raw dispatched events, because batching the
/// broadcast fan-out changed how much work one scheduler event carries.
const PRE_OPT_64X1000_EVENTS_PER_SEC: f64 = 1_524_680.0;
const PRE_OPT_64X1000_DELIVERIES_PER_SEC: f64 = 1_467_926.0;
const PRE_OPT_64X1000_WALL_MS_PER_SIM_S: f64 = 874.6;

/// Thread counts swept for the two large cells in the full trajectory.
const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn cell(nodes: usize, clients: usize, migrations: usize, run_secs: u64) -> ScaleConfig {
    ScaleConfig {
        nodes,
        clients,
        migrations,
        run_secs,
        seed: SCALE_SEED,
        threads: 1,
        monitored: false,
        strategy: Strategy::IncrementalCollective,
        aoi: false,
    }
}

/// An interest-routed variant of [`cell`] (`@aoi`-suffixed row key).
fn aoi_cell(nodes: usize, clients: usize, migrations: usize, run_secs: u64) -> ScaleConfig {
    ScaleConfig {
        aoi: true,
        ..cell(nodes, clients, migrations, run_secs)
    }
}

/// The `--aoi` sweep: interest-managed routing at the sizes where the
/// broadcast wall bites. The 256x10000 zoned row is the headline (same
/// world as the broadcast row, O(1) instead of O(nodes) inbound fan-out);
/// 1024x100000 is the first cell past the broadcast-feasible region.
fn aoi_trajectory() -> Vec<ScaleConfig> {
    vec![
        aoi_cell(64, 1000, 8, 2),
        aoi_cell(256, 10_000, 16, 1),
        aoi_cell(1024, 100_000, 8, 1),
    ]
}

/// The `--strategy` sweep: the 4x100 cell once per migration strategy
/// (including the restore-first family), so `BENCH_scale.json` carries one
/// row per strategy with its demand-fetch / write-back traffic counters.
fn strategy_trajectory() -> Vec<ScaleConfig> {
    Strategy::ALL_WITH_RESIDUAL
        .into_iter()
        .map(|strategy| ScaleConfig {
            strategy,
            ..cell(4, 100, 2, 5)
        })
        .collect()
}

/// The base trajectory: one single-thread row per cell size.
fn base_trajectory() -> Vec<ScaleConfig> {
    vec![
        cell(4, 100, 2, 5),
        cell(16, 1000, 4, 2),
        cell(64, 1000, 8, 2),
        cell(256, 10_000, 16, 1),
    ]
}

/// The full trajectory: the base cells, with the two large cells swept
/// over 1/2/4/8 worker threads (the small cells have too little work per
/// instant to say anything about the parallel core).
fn full_trajectory() -> Vec<ScaleConfig> {
    let mut cfgs = vec![cell(4, 100, 2, 5), cell(16, 1000, 4, 2)];
    for big in [cell(64, 1000, 8, 2), cell(256, 10_000, 16, 1)] {
        for threads in THREAD_SWEEP {
            let mut c = big.clone();
            c.threads = threads;
            cfgs.push(c);
        }
    }
    cfgs.extend(aoi_trajectory());
    cfgs
}

/// The CI quick sweep: the three small single-thread cells (identical to
/// the full run's, so the committed baseline compares like-for-like) plus
/// a 4-thread 64x1000 row for the `--compare-threads` gate.
fn quick_trajectory() -> Vec<ScaleConfig> {
    let mut cfgs = vec![
        cell(4, 100, 2, 5),
        cell(16, 1000, 4, 2),
        cell(64, 1000, 8, 2),
    ];
    let mut par = cell(64, 1000, 8, 2);
    par.threads = 4;
    cfgs.push(par);
    // The zoned headline row: CI gates it against the committed baseline
    // like any other cell, so a regression in the interest-routing fast
    // path shows up as a wall-clock failure, not just a determinism one.
    cfgs.push(aoi_cell(256, 10_000, 16, 1));
    cfgs
}

/// Where the BENCH_*.json files go: `$DVELM_BENCH_DIR` or the repo root.
fn bench_dir() -> std::path::PathBuf {
    let dir = std::env::var("DVELM_BENCH_DIR")
        .unwrap_or_else(|_| env!("CARGO_MANIFEST_DIR").replace("/crates/bench", ""));
    let p = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&p).expect("create bench output dir");
    p
}

fn run_sweep(cfgs: &[ScaleConfig]) -> Vec<ScaleCell> {
    let mut cells = Vec::with_capacity(cfgs.len());
    for cfg in cfgs {
        eprintln!(
            "[bench_scale] nodes={} clients={} migrations={} run_secs={} threads={} strategy={} ...",
            cfg.nodes, cfg.clients, cfg.migrations, cfg.run_secs, cfg.threads, cfg.strategy
        );
        let cell = run_scale(cfg);
        eprintln!(
            "[bench_scale]   {:.0} events/s, {:.1} wall-ms per sim-s, peak queue {} pkts, \
             {} migrations completed ({} aborted, {} rejected)",
            cell.events_per_sec,
            cell.wall_ms_per_sim_s,
            cell.peak_queued_packets,
            cell.migrations_completed,
            cell.migrations_aborted,
            cell.migrations_rejected,
        );
        cells.push(cell);
    }
    cells
}

fn write_outputs(cells: &[ScaleCell]) {
    let baseline = Baseline {
        label: "pre-optimization tree, release build, same harness".into(),
        cell: "64x1000".into(),
        events_per_sec: PRE_OPT_64X1000_EVENTS_PER_SEC,
        deliveries_per_sec: PRE_OPT_64X1000_DELIVERIES_PER_SEC,
        wall_ms_per_sim_s: PRE_OPT_64X1000_WALL_MS_PER_SIM_S,
    };
    let dir = bench_dir();
    let scale_path = dir.join("BENCH_scale.json");
    let stack_path = dir.join("BENCH_stack.json");
    std::fs::write(&scale_path, scale_json(cells, Some(&baseline)).render())
        .expect("write BENCH_scale.json");
    std::fs::write(&stack_path, stack_json(cells).render()).expect("write BENCH_stack.json");
    eprintln!("[saved {}]", scale_path.display());
    eprintln!("[saved {}]", stack_path.display());
}

fn compare_mode(args: &[String]) -> ! {
    let [base_path, fresh_path, rest @ ..] = args else {
        eprintln!("usage: bench_scale --compare <baseline.json> <fresh.json> [tolerance]");
        std::process::exit(2);
    };
    let tolerance: f64 = rest.first().map_or(2.0, |t| {
        t.parse().unwrap_or_else(|_| {
            eprintln!("bad tolerance {t:?}");
            std::process::exit(2);
        })
    });
    let read_json = |path: &String| -> Json {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = read_json(base_path);
    let fresh = read_json(fresh_path);
    let outcome = compare_bench(&baseline, &fresh, tolerance);
    for w in &outcome.warnings {
        eprintln!("WARNING: {w}");
    }
    if outcome.problems.is_empty() {
        println!("bench_scale: no regression beyond {tolerance}x against {base_path}");
        std::process::exit(0);
    }
    for p in &outcome.problems {
        eprintln!("REGRESSION: {p}");
    }
    std::process::exit(1);
}

/// The parallel-core wall-clock gate (see the module docs).
fn compare_threads_mode(args: &[String]) -> ! {
    let [fresh_path, rest @ ..] = args else {
        eprintln!("usage: bench_scale --compare-threads <fresh.json> [tolerance]");
        std::process::exit(2);
    };
    let tolerance: f64 = rest.first().map_or(1.05, |t| {
        t.parse().unwrap_or_else(|_| {
            eprintln!("bad tolerance {t:?}");
            std::process::exit(2);
        })
    });
    let text = std::fs::read_to_string(fresh_path).unwrap_or_else(|e| {
        eprintln!("cannot read {fresh_path}: {e}");
        std::process::exit(2);
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {fresh_path}: {e}");
        std::process::exit(2);
    });
    let host_cores = doc
        .get("host_cores")
        .and_then(Json::as_f64)
        .map_or(1, |n| n as usize);
    if host_cores <= 1 {
        println!(
            "bench_scale: SKIP --compare-threads — {fresh_path} was measured on a \
             single-core host (host_cores={host_cores}); parallel speedup is \
             physically unattainable there, so the wall-clock gate is vacuous. \
             Determinism across thread counts is still enforced by the test suite."
        );
        std::process::exit(0);
    }
    let cells = doc.get("cells").and_then(Json::as_arr).unwrap_or(&[]);
    let wall_at = |threads: f64| {
        cells.iter().find_map(|c| {
            (c.get("cell").and_then(Json::as_str) == Some("64x1000")
                && c.get("threads").and_then(Json::as_f64) == Some(threads))
            .then(|| c.get("wall_ms").and_then(Json::as_f64))
            .flatten()
        })
    };
    let (Some(serial), Some(parallel)) = (wall_at(1.0), wall_at(4.0)) else {
        eprintln!(
            "bench_scale: --compare-threads needs 64x1000 rows at threads=1 and \
             threads=4 in {fresh_path} (run with --quick or no arguments first)"
        );
        std::process::exit(2);
    };
    if parallel > serial * tolerance {
        eprintln!(
            "REGRESSION: 64x1000 at 4 threads took {parallel:.0} ms vs {serial:.0} ms \
             single-threaded (more than {tolerance}x slower) on a {host_cores}-core host"
        );
        std::process::exit(1);
    }
    println!(
        "bench_scale: 64x1000 at 4 threads {parallel:.0} ms vs {serial:.0} ms \
         single-threaded — parallel core is not slower (tolerance {tolerance}x, \
         {host_cores}-core host)"
    );
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--compare") => compare_mode(&args[1..]),
        Some("--compare-threads") => compare_threads_mode(&args[1..]),
        Some("--quick") => {
            let cells = run_sweep(&quick_trajectory());
            write_outputs(&cells);
        }
        Some("--strategy") => {
            let cells = run_sweep(&strategy_trajectory());
            write_outputs(&cells);
        }
        Some("--aoi") => {
            let cells = run_sweep(&aoi_trajectory());
            write_outputs(&cells);
        }
        Some("--threads") => {
            let threads: usize = args.get(1).and_then(|t| t.parse().ok()).unwrap_or_else(|| {
                eprintln!("usage: bench_scale --threads <N>");
                std::process::exit(2);
            });
            let cfgs: Vec<ScaleConfig> = base_trajectory()
                .into_iter()
                .map(|mut c| {
                    c.threads = threads.max(1);
                    c
                })
                .collect();
            let cells = run_sweep(&cfgs);
            write_outputs(&cells);
        }
        None => {
            let cells = run_sweep(&full_trajectory());
            write_outputs(&cells);
        }
        Some(other) => {
            eprintln!(
                "unknown argument {other:?}; use --quick, --strategy, --aoi, \
                 --threads, --compare or --compare-threads"
            );
            std::process::exit(2);
        }
    }
}
