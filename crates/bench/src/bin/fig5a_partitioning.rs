//! Renders Fig. 5a: the initial 10×10 zone partitioning with the node
//! assignment and the high-level direction of client movement during the
//! simulation, plus the measured client distribution at three instants.

use dvelm_dve::{ClientPopulation, MovementConfig, VirtualSpace, ZoneId, GRID};

fn grid_at(pop: &ClientPopulation, space: &VirtualSpace) -> String {
    let counts = pop.zone_counts(space);
    let mut out = String::new();
    for row in 0..GRID {
        out.push_str("  ");
        for col in 0..GRID {
            let z = ZoneId::at(row, col);
            let c = counts[z.0 as usize];
            let glyph = match c {
                0..=49 => '.',
                50..=149 => 'o',
                150..=299 => 'O',
                _ => '#',
            };
            out.push(glyph);
            out.push(' ');
        }
        out.push_str(&format!(
            "  node{}\n",
            space.node_of(ZoneId::at(row, 0)) + 1
        ));
    }
    out
}

fn main() {
    let space = VirtualSpace::new();
    let mut out = String::new();
    out.push_str("Fig. 5a — initial virtual space partitioning and client movement\n\n");
    out.push_str("zone → node assignment (row-major 10×10, two rows per node):\n\n");
    for row in 0..GRID {
        out.push_str("  ");
        for _ in 0..GRID {
            out.push_str(&format!("{} ", space.node_of(ZoneId::at(row, 0)) + 1));
        }
        match row {
            0 => out.push_str("   ↖ upper-middle clients drift here"),
            9 => out.push_str("   ↘ lower-middle clients drift here"),
            4 | 5 => out.push_str("   ── middle region drains"),
            _ => {}
        }
        out.push('\n');
    }
    out.push_str("\nclient density (10 000 clients; . <50, o <150, O <300, # ≥300 per zone):\n");
    let mut pop = ClientPopulation::new(10_000, MovementConfig::default(), 20100920);
    for t in [0.0, 450.0, 900.0] {
        pop.advance_to(t);
        out.push_str(&format!("\n  t = {t:>3.0} s\n"));
        out.push_str(&grid_at(&pop, &space));
    }
    dvelm_bench::emit("fig5a_partitioning", &out);
}
