//! Regenerates every measured figure of the paper in one go, sharing the
//! Fig. 5b/5c sweep. Pass connection counts as arguments to change the
//! sweep grid (default 16…1024).

fn main() {
    let conns: Vec<usize> = {
        let args: Vec<usize> = std::env::args()
            .skip(1)
            .filter_map(|a| a.parse().ok())
            .collect();
        if args.is_empty() {
            vec![16, 32, 64, 128, 256, 512, 1024]
        } else {
            args
        }
    };
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    eprintln!("== Fig. 4 (OpenArena) ==");
    dvelm_bench::emit("fig4_openarena_delay", &dvelm_bench::fig4(24));

    eprintln!("== Fig. 5b/5c sweep ({conns:?}) ==");
    let cells = dvelm_bench::freeze_sweep(&conns, 3, workers);
    dvelm_bench::emit("fig5b_freeze_time", &dvelm_bench::fig5b(&cells, &conns));
    dvelm_bench::emit("fig5c_freeze_bytes", &dvelm_bench::fig5c(&cells, &conns));

    eprintln!("== Fig. 5d/5e/5f (900 s DVE) ==");
    let no_lb = dvelm_bench::run_dve(false);
    let lb = dvelm_bench::run_dve(true);
    dvelm_bench::emit("fig5e_cpu_no_lb", &dvelm_bench::fig5ef(&no_lb, false));
    dvelm_bench::emit("fig5f_cpu_lb", &dvelm_bench::fig5ef(&lb, true));
    dvelm_bench::emit("fig5d_proc_distribution", &dvelm_bench::fig5d(&lb));
}
