//! Regenerates Fig. 5b: worst-case process freeze time with iterative,
//! collective and incremental collective socket migration, 16…1024
//! connections.

fn main() {
    let conns = dvelm_bench_args();
    let cells = dvelm_bench::freeze_sweep(&conns, 3, workers());
    let out = dvelm_bench::fig5b(&cells, &conns);
    dvelm_bench::emit("fig5b_freeze_time", &out);
}

fn dvelm_bench_args() -> Vec<usize> {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    if args.is_empty() {
        vec![16, 32, 64, 128, 256, 512, 1024]
    } else {
        args
    }
}

fn workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
