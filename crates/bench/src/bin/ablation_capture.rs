//! Ablation harness: the §III-B packet-loss-prevention mechanism on vs off,
//! on the OpenArena workload. Quantifies what the capture hook saves.

use dvelm_metrics::Table;
use dvelm_openarena::{run_scenario, OaScenario};
use dvelm_sim::SimTime;

fn main() {
    let base = OaScenario {
        n_clients: 24,
        run_for: SimTime::from_secs(10),
        ..OaScenario::default()
    };
    let on = run_scenario(&base);
    let off = run_scenario(&OaScenario {
        disable_capture: true,
        ..base
    });
    let r_on = on.report.expect("ran");
    let r_off = off.report.expect("ran");

    let mut out = String::new();
    out.push_str("Ablation — incoming packet-loss prevention (capture hook)\n\n");
    let mut t = Table::new(&["metric", "capture ON", "capture OFF"]);
    t.row(&[
        "packets captured+reinjected".into(),
        r_on.packets_reinjected.to_string(),
        r_off.packets_reinjected.to_string(),
    ]);
    t.row(&[
        "usercmds processed".into(),
        on.server_usercmds.to_string(),
        off.server_usercmds.to_string(),
    ]);
    t.row(&[
        "usercmds lost to the blackout".into(),
        "0".into(),
        (on.server_usercmds.saturating_sub(off.server_usercmds)).to_string(),
    ]);
    t.row(&[
        "freeze time (ms)".into(),
        format!("{:.1}", r_on.freeze_us() as f64 / 1000.0),
        format!("{:.1}", r_off.freeze_us() as f64 / 1000.0),
    ]);
    out.push_str(&t.render());
    out.push_str(
        "\nwith the hook, every datagram broadcast to the destination during the socket\n\
         blackout is queued and re-injected after restore; without it, those datagrams\n\
         are silently lost (UDP has no retransmission) — the loss prior work reports.\n",
    );
    dvelm_bench::emit("ablation_capture", &out);
}
