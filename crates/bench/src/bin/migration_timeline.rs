//! Prints the Fig. 3 protocol timeline of one concrete migration: every
//! phase entry with its timestamp and the derived intervals.

use dvelm_dve::{run_freeze_bench, FreezeBenchConfig};
use dvelm_migrate::Strategy;

fn main() {
    let connections: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(128);
    let r = run_freeze_bench(&FreezeBenchConfig {
        connections,
        strategy: Strategy::IncrementalCollective,
        repetitions: 1,
        seed: 7,
        monitored: false,
    });
    let rep = &r.reports[0];
    let mut out = String::new();
    out.push_str(&format!(
        "Migration timeline (zone server, {connections} connections, {})\n\n",
        rep.strategy
    ));
    let t0 = rep.started_at;
    for (i, (phase, at)) in rep.phase_log.iter().enumerate() {
        let next = rep
            .phase_log
            .get(i + 1)
            .map(|(_, t)| *t)
            .unwrap_or(rep.resumed_at);
        out.push_str(&format!(
            "  +{:>9.3} ms  {:<38} ({:.3} ms)\n",
            at.saturating_since(t0) as f64 / 1000.0,
            phase,
            next.saturating_since(*at) as f64 / 1000.0,
        ));
    }
    out.push_str(&format!(
        "  +{:>9.3} ms  application running on the destination\n\n",
        rep.resumed_at.saturating_since(t0) as f64 / 1000.0
    ));
    out.push_str(&format!(
        "precopy: {} iterations, {} KB while running\nfreeze:  {:.3} ms, {} KB ({} KB sockets)\n",
        rep.precopy_iterations,
        rep.precopy_bytes / 1024,
        rep.freeze_us() as f64 / 1000.0,
        rep.freeze_bytes / 1024,
        rep.freeze_socket_bytes / 1024,
    ));
    dvelm_bench::emit("migration_timeline", &out);
}
