//! Regenerates Fig. 5d: zone-server process distribution among nodes with
//! load balancing enabled (includes the Fig. 5a initial partitioning).

fn main() {
    let r = dvelm_bench::run_dve(true);
    let out = dvelm_bench::fig5d(&r);
    dvelm_bench::emit("fig5d_proc_distribution", &out);
}
