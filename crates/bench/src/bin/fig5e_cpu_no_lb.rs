//! Regenerates Fig. 5e: CPU consumption per node over the 900 s DVE
//! simulation, load balancing disabled.

fn main() {
    let r = dvelm_bench::run_dve(false);
    let out = dvelm_bench::fig5ef(&r, false);
    dvelm_bench::emit("fig5e_cpu_no_lb", &out);
}
