//! Criterion microbenchmarks of the migration path: checkpointing,
//! incremental tracking, socket record/delta computation and a small
//! end-to-end migration per strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dvelm_ckpt::{full_checkpoint, incremental_update, IncrementalTracker};
use dvelm_dve::{run_freeze_bench, FreezeBenchConfig};
use dvelm_migrate::Strategy;
use dvelm_proc::{Pid, Process};
use dvelm_sim::DetRng;
use std::hint::black_box;
use std::time::Duration;

fn bench_checkpoint(c: &mut Criterion) {
    let mut g = c.benchmark_group("checkpoint");
    g.measurement_time(Duration::from_secs(2));
    for pages in [256usize, 4096] {
        let p = Process::new(Pid(1), "srv", 64, pages);
        g.bench_with_input(BenchmarkId::new("full", pages), &p, |b, p| {
            b.iter(|| black_box(full_checkpoint(p)).transfer_bytes())
        });
        g.bench_with_input(BenchmarkId::new("encode", pages), &p, |b, p| {
            let img = full_checkpoint(p);
            b.iter(|| black_box(img.encode()).len())
        });
    }
    g.finish();
}

fn bench_incremental(c: &mut Criterion) {
    let mut g = c.benchmark_group("incremental");
    g.measurement_time(Duration::from_secs(2));
    for dirty in [50usize, 500] {
        g.bench_with_input(BenchmarkId::new("step", dirty), &dirty, |b, &dirty| {
            let mut p = Process::new(Pid(1), "srv", 64, 4096);
            let mut tr = IncrementalTracker::new();
            incremental_update(&mut tr, &mut p);
            let mut rng = DetRng::new(1);
            b.iter(|| {
                p.do_work(&mut rng, dirty);
                black_box(incremental_update(&mut tr, &mut p)).transfer_bytes()
            })
        });
    }
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end_migration_32_conns");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(8));
    for strategy in Strategy::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(strategy),
            &strategy,
            |b, &strategy| {
                b.iter(|| {
                    let r = run_freeze_bench(&FreezeBenchConfig {
                        connections: 32,
                        strategy,
                        repetitions: 1,
                        seed: 5,
                        monitored: false,
                    });
                    black_box(r.worst_freeze_us)
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_checkpoint,
    bench_incremental,
    bench_end_to_end
);
criterion_main!(benches);
