//! Criterion microbenchmarks of the network-stack substrate: segment
//! processing, capture-table matching, translation, socket records and the
//! wire encoder.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dvelm_ckpt::{WireReader, WireWriter};
use dvelm_net::{Ip, NodeId, Port, SockAddr};
use dvelm_sim::{DetRng, Jiffies, SimTime};
use dvelm_stack::capture::{CaptureKey, CaptureTable};
use dvelm_stack::tcp::{TcpCtx, TcpSocket};
use dvelm_stack::xlate::{XlateRule, XlateTable};
use dvelm_stack::{Segment, TcpFlags};
use std::hint::black_box;
use std::time::Duration;

fn sa(last: u8, port: u16) -> SockAddr {
    SockAddr::new(Ip::new(10, 0, 0, last), port)
}

fn established_pair() -> (TcpSocket, TcpSocket, u64) {
    let mut stamp = 0u64;
    let mut ctx = TcpCtx {
        now: SimTime::ZERO,
        jiffies: Jiffies(100),
        stamp: &mut stamp,
    };
    let (mut c, out) = TcpSocket::connect(sa(1, 4000), sa(2, 5000), 100, &mut ctx);
    let syn = match &out[0] {
        dvelm_stack::tcp::TcpOut::Tx(s) => s.clone(),
        _ => unreachable!(),
    };
    let (mut s, out) = TcpSocket::passive_open(
        sa(2, 5000),
        sa(1, 4000),
        syn.tcp_seq().unwrap(),
        Jiffies(0),
        900,
        &mut ctx,
    );
    let syn_ack = match &out[0] {
        dvelm_stack::tcp::TcpOut::Tx(s) => s.clone(),
        _ => unreachable!(),
    };
    let out = c.on_segment(syn_ack, &mut ctx);
    for o in out {
        if let dvelm_stack::tcp::TcpOut::Tx(seg) = o {
            s.on_segment(seg, &mut ctx);
        }
    }
    (c, s, stamp)
}

fn bench_tcp_data_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcp");
    g.measurement_time(Duration::from_secs(2));
    g.bench_function("send_recv_ack_256B", |b| {
        let (mut snd, mut rcv, mut stamp) = established_pair();
        let payload = Bytes::from(vec![7u8; 256]);
        b.iter(|| {
            let mut ctx = TcpCtx {
                now: SimTime::ZERO,
                jiffies: Jiffies(100),
                stamp: &mut stamp,
            };
            let out = snd.send(payload.clone(), &mut ctx);
            for o in out {
                if let dvelm_stack::tcp::TcpOut::Tx(seg) = o {
                    let replies = rcv.on_segment(seg, &mut ctx);
                    for r in replies {
                        if let dvelm_stack::tcp::TcpOut::Tx(seg) = r {
                            snd.on_segment(seg, &mut ctx);
                        }
                    }
                }
            }
            black_box(rcv.read(&mut ctx).len())
        })
    });
    g.bench_function("record_len_with_queues", |b| {
        let (mut snd, _rcv, mut stamp) = established_pair();
        let mut ctx = TcpCtx {
            now: SimTime::ZERO,
            jiffies: Jiffies(100),
            stamp: &mut stamp,
        };
        snd.send(Bytes::from(vec![0u8; 4096]), &mut ctx);
        b.iter(|| black_box(snd.record_len()))
    });
    g.bench_function("delta_len", |b| {
        let (mut snd, _rcv, mut stamp) = established_pair();
        let mut ctx = TcpCtx {
            now: SimTime::ZERO,
            jiffies: Jiffies(100),
            stamp: &mut stamp,
        };
        snd.send(Bytes::from(vec![0u8; 4096]), &mut ctx);
        let since = snd.mutation_stamp() / 2;
        b.iter(|| black_box(snd.delta_len(since)))
    });
    g.finish();
}

fn bench_capture(c: &mut Criterion) {
    let mut g = c.benchmark_group("capture");
    g.measurement_time(Duration::from_secs(2));
    for entries in [16usize, 1024] {
        g.bench_with_input(
            BenchmarkId::new("match_miss", entries),
            &entries,
            |b, &n| {
                let mut t = CaptureTable::new();
                for i in 0..n {
                    t.enable(
                        CaptureKey::connected(sa(3, 10_000 + i as u16), Port(5000)),
                        SimTime::ZERO,
                    );
                }
                let seg = Segment::tcp(
                    sa(9, 9999),
                    sa(1, 5000),
                    TcpFlags::ACK,
                    1,
                    1,
                    65535,
                    Jiffies(0),
                    Jiffies(0),
                    Bytes::new(),
                );
                b.iter(|| black_box(t.try_capture(&seg)))
            },
        );
    }
    g.bench_function("capture_and_drain_100", |b| {
        b.iter(|| {
            let mut t = CaptureTable::new();
            let key = CaptureKey::connected(sa(3, 3306), Port(5000));
            t.enable(key, SimTime::ZERO);
            for i in 0..100u32 {
                let seg = Segment::tcp(
                    sa(3, 3306),
                    sa(1, 5000),
                    TcpFlags::ACK,
                    i * 100,
                    0,
                    65535,
                    Jiffies(0),
                    Jiffies(0),
                    Bytes::from(vec![0u8; 64]),
                );
                t.try_capture(&seg);
            }
            black_box(t.disable_and_drain(&key).len())
        })
    });
    g.finish();
}

fn bench_xlate(c: &mut Criterion) {
    let mut g = c.benchmark_group("xlate");
    g.measurement_time(Duration::from_secs(2));
    g.bench_function("outgoing_hit", |b| {
        let mut t = XlateTable::new();
        t.install_at(
            XlateRule::new(
                sa(3, 3306),
                Ip::local_of(NodeId(0)),
                Ip::local_of(NodeId(1)),
                Port(5000),
            ),
            SimTime::ZERO,
        );
        b.iter(|| {
            let mut seg = Segment::udp(
                sa(3, 3306),
                SockAddr::new(Ip::local_of(NodeId(0)), 5000),
                Bytes::new(),
            );
            black_box(t.outgoing_at(&mut seg, SimTime::ZERO))
        })
    });
    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    g.measurement_time(Duration::from_secs(2));
    g.bench_function("encode_decode_1k_records", |b| {
        b.iter(|| {
            let mut w = WireWriter::new();
            for i in 0..1000u64 {
                w.put_u64(i);
                w.put_u32(i as u32);
            }
            let buf = w.into_bytes();
            let mut r = WireReader::new(&buf);
            let mut sum = 0u64;
            for _ in 0..1000 {
                sum += r.get_u64().unwrap();
                sum += r.get_u32().unwrap() as u64;
            }
            black_box(sum)
        })
    });
    g.finish();
}

fn bench_rng(c: &mut Criterion) {
    let mut g = c.benchmark_group("detrng");
    g.measurement_time(Duration::from_secs(2));
    g.bench_function("next_u64", |b| {
        let mut rng = DetRng::new(1);
        b.iter(|| black_box(rng.next_u64()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_tcp_data_path,
    bench_capture,
    bench_xlate,
    bench_wire,
    bench_rng
);
criterion_main!(benches);
