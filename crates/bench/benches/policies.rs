//! Criterion microbenchmarks of the load-balancing middleware: policy
//! evaluation, conductor ticks and the flow-level DVE step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dvelm_dve::{run_flow_sim, FlowSimConfig};
use dvelm_lb::{Conductor, LoadInfo, PolicyConfig};
use dvelm_net::NodeId;
use dvelm_proc::Pid;
use dvelm_sim::SimTime;
use std::hint::black_box;
use std::time::Duration;

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy");
    g.measurement_time(Duration::from_secs(2));
    for peers in [4usize, 64] {
        g.bench_with_input(BenchmarkId::new("location", peers), &peers, |b, &n| {
            let cfg = PolicyConfig::default();
            let mut db = dvelm_lb::PeerDb::new();
            for i in 0..n {
                db.update(LoadInfo::new(
                    NodeId(i as u32),
                    40.0 + (i % 50) as f64,
                    20,
                    SimTime::ZERO,
                ));
            }
            b.iter(|| black_box(cfg.choose_destination(95.0, 70.0, &db, &[])))
        });
    }
    g.bench_function("selection_100_procs", |b| {
        let cfg = PolicyConfig::default();
        let procs: Vec<(Pid, f64)> = (0..100).map(|i| (Pid(i), 0.5 + (i % 20) as f64)).collect();
        b.iter(|| black_box(cfg.choose_process(95.0, 75.0, &procs)))
    });
    g.finish();
}

fn bench_conductor_tick(c: &mut Criterion) {
    let mut g = c.benchmark_group("conductor");
    g.measurement_time(Duration::from_secs(2));
    g.bench_function("tick_idle", |b| {
        let mut cond = Conductor::new(NodeId(0), PolicyConfig::default());
        for i in 1..5u32 {
            cond.peers
                .update(LoadInfo::new(NodeId(i), 75.0, 20, SimTime::from_secs(1)));
        }
        let procs: Vec<(Pid, f64)> = (0..20).map(|i| (Pid(i), 3.6)).collect();
        let mut t = 1u64;
        b.iter(|| {
            t += 1;
            let now = SimTime::from_micros(t);
            let li = LoadInfo::new(NodeId(0), 75.0, 20, now);
            black_box(cond.on_tick(now, li, &procs).len())
        })
    });
    g.finish();
}

fn bench_flow_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("flowsim");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(10));
    g.bench_function("dve_900s_lb", |b| {
        b.iter(|| {
            let r = run_flow_sim(&FlowSimConfig::default());
            black_box(r.migrations.len())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_policies,
    bench_conductor_tick,
    bench_flow_sim
);
criterion_main!(benches);
