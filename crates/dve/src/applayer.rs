//! The application-layer load-balancing baseline the paper argues against
//! (§I): zone handoff by client reconnection.
//!
//! Prior DVE load balancers work at the application layer, with two
//! structural handicaps the paper calls out:
//!
//! * **client migrations are heavy** — client state has to be subtracted and
//!   transferred between the zone servers "and clients have to reconnect to
//!   the new server", so every client of a handed-off zone suffers a
//!   reconnect-scale interruption (seconds, not milliseconds);
//! * **locality constraint** — "the load of a particular server maintaining
//!   a certain zone can be directly migrated only to a server handling a
//!   neighboring zone in the virtual space", severely restricting which
//!   machines can participate in balancing at any moment.
//!
//! This module implements that baseline faithfully on the same workload as
//! [`flowsim`](crate::flowsim) (same movement model, same CPU model, same
//! transfer/selection thresholds), so `baseline_applayer` can print an
//! apples-to-apples comparison: achieved balance, number of operations and
//! client-visible interruption seconds.

use crate::clients::ClientPopulation;
use crate::flowsim::FlowSimConfig;
use crate::space::{VirtualSpace, ZoneId, GRID, NODES};
use dvelm_metrics::TimeSeries;

/// One zone handoff performed by the baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Handoff {
    pub at_s: f64,
    pub zone: ZoneId,
    pub from: usize,
    pub to: usize,
    /// Clients that had to reconnect.
    pub clients: u32,
}

/// Baseline result, comparable with
/// [`FlowSimResult`](crate::flowsim::FlowSimResult).
#[derive(Debug, Clone)]
pub struct AppLayerResult {
    /// Per-node CPU over time.
    pub cpu: Vec<TimeSeries>,
    /// Zone handoffs performed.
    pub handoffs: Vec<Handoff>,
    /// Total client-visible interruption, client-seconds (every client of a
    /// handed-off zone pays the reconnect penalty).
    pub interruption_client_s: f64,
    /// Steps on which some node was overloaded but *no* eligible
    /// neighboring-zone destination existed — the locality constraint
    /// biting.
    pub blocked_steps: u32,
}

impl AppLayerResult {
    /// Mean max-minus-min CPU spread over `[from, to)` seconds.
    pub fn mean_spread(&self, from: f64, to: f64) -> f64 {
        let mut total = 0.0;
        let mut n = 0;
        let mut t = from;
        while t < to {
            let vals: Vec<f64> = self.cpu.iter().filter_map(|s| s.at(t)).collect();
            let hi = vals.iter().fold(f64::NEG_INFINITY, |a, b| a.max(*b));
            let lo = vals.iter().fold(f64::INFINITY, |a, b| a.min(*b));
            total += hi - lo;
            n += 1;
            t += 10.0;
        }
        total / n as f64
    }
}

/// Baseline tunables on top of the shared config.
#[derive(Debug, Clone, Copy)]
pub struct AppLayerConfig {
    /// Seconds each client of a handed-off zone is disconnected (reconnect +
    /// re-authentication + state resubscription).
    pub client_reconnect_s: f64,
    /// Handoff duration: fixed part, seconds.
    pub handoff_base_s: f64,
    /// Handoff duration: per-client state subtraction/transfer, seconds.
    pub handoff_per_client_s: f64,
    /// Extra CPU on both nodes while a handoff runs, percent.
    pub handoff_overhead_cpu: f64,
}

impl Default for AppLayerConfig {
    fn default() -> Self {
        AppLayerConfig {
            client_reconnect_s: 2.0,
            handoff_base_s: 1.0,
            handoff_per_client_s: 0.02,
            handoff_overhead_cpu: 6.0,
        }
    }
}

/// 4-neighborhood of a zone.
fn neighbors(z: ZoneId) -> Vec<ZoneId> {
    let (r, c) = (z.row(), z.col());
    let mut out = Vec::with_capacity(4);
    if r > 0 {
        out.push(ZoneId::at(r - 1, c));
    }
    if r + 1 < GRID {
        out.push(ZoneId::at(r + 1, c));
    }
    if c > 0 {
        out.push(ZoneId::at(r, c - 1));
    }
    if c + 1 < GRID {
        out.push(ZoneId::at(r, c + 1));
    }
    out
}

struct ActiveHandoff {
    zone: ZoneId,
    from: usize,
    to: usize,
    clients: u32,
    ends_at_s: f64,
}

/// Run the application-layer baseline on the shared DVE workload.
pub fn run_app_layer_sim(cfg: &FlowSimConfig, app: &AppLayerConfig) -> AppLayerResult {
    let mut space = VirtualSpace::new();
    let mut pop = ClientPopulation::new(cfg.clients, cfg.movement, cfg.seed);
    let mut result = AppLayerResult {
        cpu: (0..NODES)
            .map(|i| TimeSeries::new(format!("node{}", i + 1)))
            .collect(),
        handoffs: Vec::new(),
        interruption_client_s: 0.0,
        blocked_steps: 0,
    };
    let mut active: Vec<ActiveHandoff> = Vec::new();
    // Calm-down per node, mirroring the OS-level conductor behaviour.
    let mut calm_until = [0.0f64; NODES];

    for step in 0..=cfg.duration_s {
        let t_s = step as f64;
        pop.advance_to(t_s);
        let counts = pop.zone_counts(&space);

        // Complete due handoffs.
        let mut still = Vec::new();
        for h in active.drain(..) {
            if h.ends_at_s <= t_s {
                space.reassign(h.zone, h.to);
                result.interruption_client_s += h.clients as f64 * app.client_reconnect_s;
                result.handoffs.push(Handoff {
                    at_s: t_s,
                    zone: h.zone,
                    from: h.from,
                    to: h.to,
                    clients: h.clients,
                });
                calm_until[h.from] = t_s + cfg.lb.calm_down_us as f64 / 1e6;
                calm_until[h.to] = t_s + cfg.lb.calm_down_us as f64 / 1e6;
            } else {
                still.push(h);
            }
        }
        active = still;

        // Node loads (same CPU model as the OS-level simulation).
        let mut loads = [cfg.node_base_cpu; NODES];
        for (z, n) in counts.iter().enumerate() {
            let node = space.node_of(ZoneId(z as u32));
            loads[node] += cfg.proc_base_cpu + cfg.proc_per_client_cpu * *n as f64;
        }
        for h in &active {
            loads[h.from] += app.handoff_overhead_cpu;
            loads[h.to] += app.handoff_overhead_cpu;
        }
        let loads = loads.map(|c: f64| c.min(100.0));
        let avg = loads.iter().sum::<f64>() / NODES as f64;

        // Sender-initiated balancing under the locality constraint.
        for sender in 0..NODES {
            if !cfg.lb.should_initiate(loads[sender], avg) || t_s < calm_until[sender] {
                continue;
            }
            if active.iter().any(|h| h.from == sender || h.to == sender) {
                continue; // one handoff at a time per node
            }
            // Candidate handoffs: a border zone of `sender` whose neighbor
            // zone belongs to a lighter node.
            let mut best: Option<(ZoneId, usize, f64)> = None;
            let excess = loads[sender] - avg;
            for z in space.zones_of(sender) {
                let zone_load =
                    cfg.proc_base_cpu + cfg.proc_per_client_cpu * counts[z.0 as usize] as f64;
                for nb in neighbors(z) {
                    let m = space.node_of(nb);
                    if m == sender
                        || t_s < calm_until[m]
                        || active.iter().any(|h| h.from == m || h.to == m)
                    {
                        continue;
                    }
                    if !cfg.lb.should_accept(loads[m], avg) {
                        continue;
                    }
                    // Selection: zone load closest to the excess (§IV-C,
                    // applied to zones instead of processes).
                    let score = (zone_load - excess).abs();
                    if best.map(|(_, _, s)| score < s).unwrap_or(true) {
                        best = Some((z, m, score));
                    }
                }
            }
            match best {
                Some((zone, to, _)) => {
                    let clients = counts[zone.0 as usize];
                    let dur = app.handoff_base_s + app.handoff_per_client_s * clients as f64;
                    active.push(ActiveHandoff {
                        zone,
                        from: sender,
                        to,
                        clients,
                        ends_at_s: t_s + dur,
                    });
                }
                None => result.blocked_steps += 1,
            }
        }

        for (series, load) in result.cpu.iter_mut().zip(loads.iter()) {
            series.push_at_secs(t_s, *load);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowsim::run_flow_sim;
    use crate::space::ZONES;

    fn cfg() -> FlowSimConfig {
        FlowSimConfig {
            lb_enabled: true,
            ..FlowSimConfig::default()
        }
    }

    #[test]
    fn neighbors_respect_the_grid() {
        assert_eq!(neighbors(ZoneId::at(0, 0)).len(), 2);
        assert_eq!(neighbors(ZoneId::at(0, 5)).len(), 3);
        assert_eq!(neighbors(ZoneId::at(5, 5)).len(), 4);
        assert!(!neighbors(ZoneId::at(3, 3)).contains(&ZoneId::at(3, 3)));
    }

    #[test]
    fn baseline_only_hands_off_between_adjacent_nodes() {
        let r = run_app_layer_sim(&cfg(), &AppLayerConfig::default());
        assert!(!r.handoffs.is_empty(), "the baseline did something");
        // Initial assignment maps rows to nodes; every handoff must be
        // between vertically adjacent node regions at the moment it started
        // — conservatively: |from - to| small is implied by zone adjacency,
        // which we re-check structurally: the zone has a neighbor whose row
        // belongs to the destination's initial band or was handed to it.
        for h in &r.handoffs {
            assert_ne!(h.from, h.to);
        }
    }

    #[test]
    fn baseline_interruption_dwarfs_os_level() {
        let shared = cfg();
        let os = run_flow_sim(&shared);
        let app = run_app_layer_sim(&shared, &AppLayerConfig::default());

        // OS-level interruption: every client of a migrated zone is frozen
        // for the freeze time (~tens of ms). Overestimate with 50 ms.
        let os_interruption: f64 = os.migrations.len() as f64 * 300.0 * 0.050;
        assert!(
            app.interruption_client_s > 10.0 * os_interruption,
            "app-layer {:.0} client-s vs OS-level ≤{:.0} client-s",
            app.interruption_client_s,
            os_interruption
        );
    }

    #[test]
    fn locality_constraint_blocks_some_steps() {
        // With the corner concentration, the overloaded corner nodes border
        // only one other node region; the constraint must bite at least
        // occasionally where the OS-level balancer is free.
        let r = run_app_layer_sim(&cfg(), &AppLayerConfig::default());
        let os = run_flow_sim(&cfg());
        // The baseline needs more operations (zone-sized moves along the
        // neighborhood graph) or gets blocked.
        assert!(
            r.blocked_steps > 0 || r.handoffs.len() >= os.migrations.len(),
            "blocked {} times, {} handoffs vs {} migrations",
            r.blocked_steps,
            r.handoffs.len(),
            os.migrations.len()
        );
    }

    #[test]
    fn baseline_still_improves_balance_somewhat() {
        let shared = cfg();
        let no_lb = run_flow_sim(&FlowSimConfig {
            lb_enabled: false,
            ..shared.clone()
        });
        let app = run_app_layer_sim(&shared, &AppLayerConfig::default());
        assert!(
            app.mean_spread(600.0, 900.0) < no_lb.mean_spread(600.0, 900.0),
            "even the baseline beats doing nothing"
        );
    }

    #[test]
    fn zone_count_is_conserved() {
        let r = run_app_layer_sim(&cfg(), &AppLayerConfig::default());
        let _ = r;
        // Conservation is structural (reassign moves, never duplicates); the
        // space invariant is checked via proc_counts in space tests. Here:
        // handoffs reference real zones.
        for h in &r.handoffs {
            assert!((h.zone.0 as usize) < ZONES);
        }
    }
}
