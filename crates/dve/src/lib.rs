//! The DVE simulation workload (§VI-C/D).
//!
//! Reproduces the paper's evaluation environment:
//!
//! * a virtual space of **10×10 zones**, five server nodes initially hosting
//!   **20 zone-server processes each** (Fig. 5a);
//! * **10 000 clients**, initially uniform, whose middle-region members
//!   drift toward the up-left and down-right corners over the ~15-minute
//!   experiment — the clustering behaviour reported for real MMOGs;
//! * zone servers running the **real-time loop**: ~20 updates/s of 256-byte
//!   messages, a MySQL session to the database server, CPU consumption
//!   proportional to the clients present in the zone;
//! * a packet-level scenario ([`freezebench`]) that migrates a zone server
//!   with 16…1024 live TCP client connections — the Fig. 5b/5c experiment;
//! * a flow-level 900 s simulation ([`flowsim`]) driving the *same*
//!   `dvelm-lb` conductor code — the Fig. 5d/5e/5f experiment.

pub mod applayer;
pub mod apps;
pub mod clients;
pub mod flowsim;
pub mod freezebench;
pub mod space;

pub use applayer::{run_app_layer_sim, AppLayerConfig, AppLayerResult};
pub use apps::{DbServer, SwarmClient, ZoneServer, DB_PORT, ZONE_BASE_PORT};
pub use clients::{ClientPopulation, MovementConfig};
pub use flowsim::{run_flow_sim, FlowSimConfig, FlowSimResult};
pub use freezebench::{run_freeze_bench, FreezeBenchConfig, FreezeBenchResult};
pub use space::{VirtualSpace, ZoneId, GRID, ZONES};
