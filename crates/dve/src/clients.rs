//! The client population and its movement model (§VI-C).
//!
//! 10 000 clients start uniformly distributed. Over the ~15-minute
//! experiment, clients from the middle rows of the virtual space gradually
//! move toward the up-left and down-right corners (Fig. 5a's arrows) — the
//! entity clustering reported as typical for large-scale environments.

use crate::space::{VirtualSpace, ZoneId, GRID, ZONES};
use dvelm_sim::DetRng;

/// Movement-model parameters.
#[derive(Debug, Clone, Copy)]
pub struct MovementConfig {
    /// Fraction of middle-region clients that join the drift.
    pub mover_fraction: f64,
    /// Middle region: rows `middle_rows.0 ..= middle_rows.1` drift.
    pub middle_rows: (usize, usize),
    /// Simulation second at which the drift starts.
    pub start_s: f64,
    /// Simulation second by which movers arrive at their corner region.
    pub arrive_s: f64,
}

impl Default for MovementConfig {
    fn default() -> Self {
        MovementConfig {
            mover_fraction: 0.45,
            middle_rows: (3, 6),
            start_s: 60.0,
            arrive_s: 720.0,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Client {
    x: f64,
    y: f64,
    /// Drift target, if this client is a mover.
    target: Option<(f64, f64)>,
    start: (f64, f64),
}

/// The population of simulated players.
#[derive(Debug, Clone)]
pub struct ClientPopulation {
    clients: Vec<Client>,
    cfg: MovementConfig,
    jitter: DetRng,
}

impl ClientPopulation {
    /// `n` clients uniformly distributed; movers chosen per the config.
    pub fn new(n: usize, cfg: MovementConfig, seed: u64) -> ClientPopulation {
        let mut rng = DetRng::new(seed);
        let mut clients = Vec::with_capacity(n);
        for _ in 0..n {
            let x = rng.range_f64(0.0, 10.0);
            let y = rng.range_f64(0.0, 10.0);
            let row = y as usize;
            let in_middle = row >= cfg.middle_rows.0 && row <= cfg.middle_rows.1;
            let target = if in_middle && rng.chance(cfg.mover_fraction) {
                // Upper middle drifts up-left, lower middle down-right.
                let up = y < (cfg.middle_rows.0 + cfg.middle_rows.1 + 1) as f64 / 2.0;
                Some(if up {
                    (rng.range_f64(0.0, 3.0), rng.range_f64(0.0, 2.0))
                } else {
                    (rng.range_f64(7.0, 10.0), rng.range_f64(8.0, 10.0))
                })
            } else {
                None
            };
            clients.push(Client {
                x,
                y,
                target,
                start: (x, y),
            });
        }
        ClientPopulation {
            clients,
            cfg,
            jitter: rng.fork(0x77),
        }
    }

    /// Number of clients.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Advance positions to simulation time `t_s` (idempotent per time; the
    /// drift is interpolated from the start positions, with small random
    /// walk noise for non-movers).
    pub fn advance_to(&mut self, t_s: f64) {
        let MovementConfig {
            start_s, arrive_s, ..
        } = self.cfg;
        let progress = ((t_s - start_s) / (arrive_s - start_s)).clamp(0.0, 1.0);
        for c in &mut self.clients {
            match c.target {
                Some((tx, ty)) => {
                    c.x = c.start.0 + (tx - c.start.0) * progress;
                    c.y = c.start.1 + (ty - c.start.1) * progress;
                }
                None => {
                    c.x = (c.x + self.jitter.range_f64(-0.02, 0.02)).clamp(0.0, 9.999);
                    c.y = (c.y + self.jitter.range_f64(-0.02, 0.02)).clamp(0.0, 9.999);
                }
            }
        }
    }

    /// Clients per zone.
    pub fn zone_counts(&self, space: &VirtualSpace) -> [u32; ZONES] {
        let mut counts = [0u32; ZONES];
        for c in &self.clients {
            counts[space.zone_of(c.x, c.y).0 as usize] += 1;
        }
        counts
    }

    /// Clients per grid row (diagnostics).
    pub fn row_counts(&self, space: &VirtualSpace) -> [u32; GRID] {
        let zc = self.zone_counts(space);
        let mut rows = [0u32; GRID];
        for (z, n) in zc.iter().enumerate() {
            rows[ZoneId(z as u32).row()] += n;
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_distribution_is_roughly_uniform() {
        let pop = ClientPopulation::new(10_000, MovementConfig::default(), 1);
        let space = VirtualSpace::new();
        let counts = pop.zone_counts(&space);
        let (lo, hi) = counts
            .iter()
            .fold((u32::MAX, 0), |(l, h), c| (l.min(*c), h.max(*c)));
        assert!(
            lo > 50 && hi < 170,
            "zone counts out of uniform band: {lo}..{hi}"
        );
        assert_eq!(counts.iter().sum::<u32>(), 10_000);
    }

    #[test]
    fn drift_concentrates_corners_and_empties_middle() {
        let mut pop = ClientPopulation::new(10_000, MovementConfig::default(), 2);
        let space = VirtualSpace::new();
        let rows_before = pop.row_counts(&space);
        pop.advance_to(900.0);
        let rows_after = pop.row_counts(&space);
        // Top two rows (node1's region) and bottom two (node5's) gained.
        let top_before: u32 = rows_before[..2].iter().sum();
        let top_after: u32 = rows_after[..2].iter().sum();
        let mid_before: u32 = rows_before[4..6].iter().sum();
        let mid_after: u32 = rows_after[4..6].iter().sum();
        assert!(
            top_after as f64 > top_before as f64 * 1.3,
            "{top_before} → {top_after}"
        );
        assert!(
            (mid_after as f64) < mid_before as f64 * 0.8,
            "{mid_before} → {mid_after}"
        );
        assert_eq!(rows_after.iter().sum::<u32>(), 10_000, "nobody vanishes");
    }

    #[test]
    fn drift_is_gradual() {
        let mut pop = ClientPopulation::new(5_000, MovementConfig::default(), 3);
        let space = VirtualSpace::new();
        pop.advance_to(300.0);
        let mid_300: u32 = pop.row_counts(&space)[4..6].iter().sum();
        pop.advance_to(700.0);
        let mid_700: u32 = pop.row_counts(&space)[4..6].iter().sum();
        assert!(
            mid_700 < mid_300,
            "middle keeps draining: {mid_300} → {mid_700}"
        );
    }

    #[test]
    fn before_start_nothing_moves_far() {
        let mut pop = ClientPopulation::new(1_000, MovementConfig::default(), 4);
        let space = VirtualSpace::new();
        let before = pop.row_counts(&space);
        pop.advance_to(30.0); // before start_s
        let after = pop.row_counts(&space);
        for (b, a) in before.iter().zip(after.iter()) {
            assert!((*b as i64 - *a as i64).abs() < 30, "only jitter expected");
        }
    }
}
