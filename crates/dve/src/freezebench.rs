//! The Fig. 5b/5c experiment: migrate a zone server that maintains 16…1024
//! live client TCP connections plus a MySQL session, and measure the
//! worst-case process freeze time and the socket bytes shipped in the freeze
//! phase, per strategy.

use crate::apps::{DbServer, SwarmClient, ZoneServer, DB_PORT, ZONE_BASE_PORT};
use dvelm_cluster::{World, WorldConfig};
use dvelm_migrate::{MigrationReport, Strategy};
use dvelm_net::{Ip, SockAddr};
#[cfg(test)]
use dvelm_sim::MILLISECOND;
use dvelm_sim::{SimTime, SECOND};

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct FreezeBenchConfig {
    /// Client TCP connections to the zone server.
    pub connections: usize,
    /// Socket-migration strategy.
    pub strategy: Strategy,
    /// Independent repetitions (the paper reports the worst case).
    pub repetitions: usize,
    /// Base RNG seed (each repetition derives its own).
    pub seed: u64,
    /// Run with the invariant monitor enabled. The monitor observes the
    /// effect stream without scheduling events or drawing randomness, so
    /// every measurement must be byte-identical either way — asserted by
    /// `tests/determinism_replay.rs`.
    pub monitored: bool,
}

impl Default for FreezeBenchConfig {
    fn default() -> Self {
        FreezeBenchConfig {
            connections: 128,
            strategy: Strategy::IncrementalCollective,
            repetitions: 3,
            seed: 7,
            monitored: false,
        }
    }
}

/// Worst-case and per-run measurements.
#[derive(Debug, Clone)]
pub struct FreezeBenchResult {
    /// Worst-case process freeze time across repetitions, µs (Fig. 5b).
    pub worst_freeze_us: u64,
    /// Mean freeze time, µs.
    pub mean_freeze_us: f64,
    /// Worst-case socket bytes shipped during the freeze phase (Fig. 5c).
    pub worst_freeze_socket_bytes: u64,
    /// All per-run reports.
    pub reports: Vec<MigrationReport>,
}

/// One repetition: build the world, establish the connections, warm up,
/// migrate, return the report.
fn one_run(cfg: &FreezeBenchConfig, rep: usize) -> MigrationReport {
    let wcfg = WorldConfig {
        seed: cfg.seed.wrapping_mul(0x9E37_79B9).wrapping_add(rep as u64),
        strategy: cfg.strategy,
        ..WorldConfig::default()
    };
    let mut w = World::new(wcfg);
    if cfg.monitored {
        w.enable_monitor();
    }
    let n0 = w.add_server_node();
    let n1 = w.add_server_node();
    let db_host = w.add_database_host();
    let client_host = w.add_client_host();

    // Database server.
    let db_pid = w.spawn_process(db_host, "mysqld", 256, 1024, Box::new(DbServer::new()));
    let db_addr = SockAddr::new(w.hosts[db_host].stack.local_ip, DB_PORT);
    w.app_tcp_listen(db_host, db_pid, db_addr);

    // The zone server, with its MySQL session (the app recognizes the db
    // session in on_connected).
    let zone_addr = SockAddr::new(Ip::CLUSTER_PUBLIC, ZONE_BASE_PORT);
    let zone_pid = w.spawn_process(n0, "zone_serv", 256, 4096, Box::new(ZoneServer::new()));
    w.app_tcp_listen(n0, zone_pid, zone_addr);
    w.app_tcp_connect(n0, zone_pid, db_addr, true);

    // The client swarm.
    let swarm_pid = w.spawn_process(client_host, "swarm", 64, 512, Box::new(SwarmClient::new()));
    for _ in 0..cfg.connections {
        w.app_tcp_connect(client_host, swarm_pid, zone_addr, false);
    }

    // Warm up: handshakes + steady-state traffic.
    w.run_until(SimTime::from_millis(1_200));
    w.begin_migration(zone_pid, n1, cfg.strategy)
        .expect("migration starts");
    // Precopy schedule is ~0.7 s; run well past it.
    w.run_for(2 * SECOND);
    assert_eq!(w.active_migrations(), 0, "migration must have completed");
    assert_eq!(w.host_of(zone_pid), Some(n1));
    if cfg.monitored {
        w.monitor_sweep();
        assert!(
            w.violations().is_empty(),
            "fault-free freeze bench must hold every invariant: {:?}",
            w.violations()
        );
    }
    w.reports.pop().expect("one report")
}

/// Run the experiment.
pub fn run_freeze_bench(cfg: &FreezeBenchConfig) -> FreezeBenchResult {
    assert!(cfg.repetitions > 0);
    let reports: Vec<MigrationReport> = (0..cfg.repetitions).map(|rep| one_run(cfg, rep)).collect();
    let worst_freeze_us = reports
        .iter()
        .map(|r| r.freeze_us())
        .max()
        .expect("non-empty");
    let mean_freeze_us =
        reports.iter().map(|r| r.freeze_us() as f64).sum::<f64>() / reports.len() as f64;
    let worst_freeze_socket_bytes = reports
        .iter()
        .map(|r| r.freeze_socket_bytes)
        .max()
        .expect("non-empty");
    FreezeBenchResult {
        worst_freeze_us,
        mean_freeze_us,
        worst_freeze_socket_bytes,
        reports,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(connections: usize, strategy: Strategy) -> FreezeBenchResult {
        run_freeze_bench(&FreezeBenchConfig {
            connections,
            strategy,
            repetitions: 1,
            seed: 11,
            monitored: false,
        })
    }

    #[test]
    fn strategies_order_as_in_fig5b() {
        let it = quick(96, Strategy::Iterative);
        let co = quick(96, Strategy::Collective);
        let inc = quick(96, Strategy::IncrementalCollective);
        assert!(
            it.worst_freeze_us > co.worst_freeze_us,
            "iterative {} ≤ collective {}",
            it.worst_freeze_us,
            co.worst_freeze_us
        );
        assert!(
            co.worst_freeze_us >= inc.worst_freeze_us,
            "collective {} < incremental {}",
            co.worst_freeze_us,
            inc.worst_freeze_us
        );
        // Fig. 5c: incremental ships far fewer socket bytes in the freeze.
        assert!(inc.worst_freeze_socket_bytes * 3 < co.worst_freeze_socket_bytes);
        // Iterative and collective ship the same socket payload.
        let rel = it.worst_freeze_socket_bytes as f64 / co.worst_freeze_socket_bytes as f64;
        assert!(
            (0.8..1.25).contains(&rel),
            "iterative/collective byte ratio {rel}"
        );
    }

    #[test]
    fn freeze_time_is_interactive_grade() {
        let r = quick(64, Strategy::IncrementalCollective);
        assert!(
            r.worst_freeze_us < 40 * MILLISECOND,
            "{}µs exceeds the paper's 40 ms bound",
            r.worst_freeze_us
        );
        let report = &r.reports[0];
        assert_eq!(
            report.sockets_migrated as usize,
            64 + 1 + 1,
            "clients + listener + db"
        );
        assert!(report.packets_reinjected > 0 || report.freeze_us() < 25_000);
    }
}
