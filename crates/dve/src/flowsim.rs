//! The 900-second DVE load-balancing experiment (Fig. 5d/5e/5f) at flow
//! level.
//!
//! The packet-level world is exercised by the migration experiments; for the
//! 15-minute, 100-process, 10 000-client load-trajectory figures the
//! simulation runs at one-second steps: client movement updates zone
//! populations, zone-server CPU follows its client count, and the *real*
//! conductor state machines from `dvelm-lb` (the same code the packet-level
//! world wires in) exchange heartbeats and initiate migrations. Migration
//! durations and overheads come from the calibrated
//! [`CostModel`].

use crate::clients::{ClientPopulation, MovementConfig};
use crate::space::{VirtualSpace, ZoneId, NODES, ZONES};
use dvelm_lb::{Conductor, LbEffect, LoadInfo, PolicyConfig};
use dvelm_metrics::TimeSeries;
use dvelm_migrate::{predict_total_us, CostModel, Strategy, WorkloadProfile};
use dvelm_net::NodeId;
use dvelm_proc::Pid;
use dvelm_sim::SimTime;

/// Experiment parameters.
#[derive(Debug, Clone)]
pub struct FlowSimConfig {
    /// Total simulated clients.
    pub clients: usize,
    /// Experiment duration in seconds (the paper runs ≈15 minutes).
    pub duration_s: u32,
    /// Load balancing on or off (Fig. 5f vs Fig. 5e).
    pub lb_enabled: bool,
    /// Movement model.
    pub movement: MovementConfig,
    /// Conductor policies.
    pub lb: PolicyConfig,
    /// Migration cost model.
    pub cost: CostModel,
    /// OS + services baseline CPU per node, percent.
    pub node_base_cpu: f64,
    /// Zone-server CPU model: share = base + per_client × clients.
    pub proc_base_cpu: f64,
    pub proc_per_client_cpu: f64,
    /// Extra CPU on both ends while a migration is in flight, percent.
    pub migration_overhead_cpu: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for FlowSimConfig {
    fn default() -> Self {
        FlowSimConfig {
            clients: 10_000,
            duration_s: 900,
            lb_enabled: true,
            movement: MovementConfig::default(),
            lb: PolicyConfig {
                // Tighter than the packet-level defaults: the paper's run
                // rebalances ~7 processes off each corner node over 15 min.
                imbalance_delta: 4.0,
                receiver_margin: 0.5,
                calm_down_us: 6_000_000,
                ..PolicyConfig::default()
            },
            cost: CostModel::default(),
            node_base_cpu: 5.0,
            proc_base_cpu: 1.5,
            proc_per_client_cpu: 0.0215,
            migration_overhead_cpu: 3.0,
            seed: 20100920, // CLUSTER 2010
        }
    }
}

/// One completed migration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigRecord {
    pub at_s: f64,
    pub zone: ZoneId,
    pub from: usize,
    pub to: usize,
}

/// Experiment output.
#[derive(Debug, Clone)]
pub struct FlowSimResult {
    /// Per-node CPU consumption over time (Fig. 5e/5f).
    pub cpu: Vec<TimeSeries>,
    /// Per-node zone-server process counts over time (Fig. 5d).
    pub procs: Vec<TimeSeries>,
    /// Completed migrations.
    pub migrations: Vec<MigRecord>,
}

impl FlowSimResult {
    /// Max-minus-min node CPU at a given second (imbalance measure).
    pub fn spread_at(&self, t_s: f64) -> f64 {
        let vals: Vec<f64> = self.cpu.iter().filter_map(|s| s.at(t_s)).collect();
        let hi = vals.iter().fold(f64::NEG_INFINITY, |a, b| a.max(*b));
        let lo = vals.iter().fold(f64::INFINITY, |a, b| a.min(*b));
        hi - lo
    }

    /// Mean max-minus-min spread over `[from, to)` seconds.
    pub fn mean_spread(&self, from: f64, to: f64) -> f64 {
        let mut total = 0.0;
        let mut n = 0;
        let mut t = from;
        while t < to {
            total += self.spread_at(t);
            n += 1;
            t += 10.0;
        }
        total / n as f64
    }
}

struct ActiveMig {
    zone: ZoneId,
    from: usize,
    to: usize,
    ends_at_s: f64,
}

/// Zone id ↔ pid mapping (zone z's server process is pid z+1).
fn pid_of(zone: ZoneId) -> Pid {
    Pid(zone.0 as u64 + 1)
}

fn zone_of(pid: Pid) -> ZoneId {
    ZoneId((pid.0 - 1) as u32)
}

/// Run the experiment.
pub fn run_flow_sim(cfg: &FlowSimConfig) -> FlowSimResult {
    let mut space = VirtualSpace::new();
    let mut pop = ClientPopulation::new(cfg.clients, cfg.movement, cfg.seed);
    let mut conductors: Vec<Conductor> = (0..NODES)
        .map(|i| Conductor::new(NodeId(i as u32), cfg.lb))
        .collect();
    let mut active: Vec<ActiveMig> = Vec::new();
    let mut result = FlowSimResult {
        cpu: (0..NODES)
            .map(|i| TimeSeries::new(format!("node{}", i + 1)))
            .collect(),
        procs: (0..NODES)
            .map(|i| TimeSeries::new(format!("node{}", i + 1)))
            .collect(),
        migrations: Vec::new(),
    };

    // Per-zone client counts and per-node loads for a given instant.
    let node_loads =
        |space: &VirtualSpace, counts: &[u32; ZONES], active: &[ActiveMig], cfg: &FlowSimConfig| {
            let mut cpu = [cfg.node_base_cpu; NODES];
            for (z, n_clients) in counts.iter().enumerate() {
                let node = space.node_of(ZoneId(z as u32));
                cpu[node] += cfg.proc_base_cpu + cfg.proc_per_client_cpu * *n_clients as f64;
            }
            for m in active {
                cpu[m.from] += cfg.migration_overhead_cpu;
                cpu[m.to] += cfg.migration_overhead_cpu;
            }
            cpu.map(|c| c.min(100.0))
        };

    // Instantaneous conductor message bus (LAN latencies ≪ the 1 s step).
    fn dispatch(
        conductors: &mut [Conductor],
        now: SimTime,
        loads: &[f64; NODES],
        from: usize,
        effects: Vec<LbEffect>,
        started: &mut Vec<(usize, Pid, usize)>,
    ) {
        let mut queue: Vec<(usize, LbEffect)> = effects.into_iter().map(|a| (from, a)).collect();
        while let Some((src, action)) = queue.pop() {
            match action {
                LbEffect::Broadcast(msg) => {
                    for i in 0..conductors.len() {
                        if i != src {
                            let li = LoadInfo::new(NodeId(i as u32), loads[i], 0, now);
                            let out = conductors[i].on_msg(now, NodeId(src as u32), msg, li);
                            queue.extend(out.into_iter().map(|a| (i, a)));
                        }
                    }
                }
                LbEffect::Send(to, msg) => {
                    let i = to.0 as usize;
                    let li = LoadInfo::new(to, loads[i], 0, now);
                    let out = conductors[i].on_msg(now, NodeId(src as u32), msg, li);
                    queue.extend(out.into_iter().map(|a| (i, a)));
                }
                LbEffect::StartMigration { pid, dest, .. } => {
                    started.push((src, pid, dest.0 as usize));
                }
                // The instantaneous bus never stalls a transfer long enough
                // for the sender's lease-expiry cancel to fire; if one does,
                // the flow model just records the failure on the sender.
                LbEffect::CancelMigration { .. } => {
                    let out = conductors[src].on_migration_finished(now, false);
                    queue.extend(out.into_iter().map(|a| (src, a)));
                }
            }
        }
    }

    for step in 0..=cfg.duration_s {
        let t_s = step as f64;
        let now = SimTime::from_secs(step as u64);
        pop.advance_to(t_s);
        let counts = pop.zone_counts(&space);

        // Complete due migrations.
        let mut still_active = Vec::new();
        for m in active.drain(..) {
            if m.ends_at_s <= t_s {
                space.reassign(m.zone, m.to);
                result.migrations.push(MigRecord {
                    at_s: t_s,
                    zone: m.zone,
                    from: m.from,
                    to: m.to,
                });
                // Sender-side conductor reports completion; the MigDone it
                // emits releases the receiver.
                let loads = node_loads(&space, &counts, &still_active, cfg);
                let mut started = Vec::new();
                let effects = conductors[m.from].on_migration_finished(now, true);
                dispatch(&mut conductors, now, &loads, m.from, effects, &mut started);
                debug_assert!(started.is_empty());
            } else {
                still_active.push(m);
            }
        }
        active = still_active;

        let loads = node_loads(&space, &counts, &active, cfg);

        // Discovery round: the first instant of the run, before any tick —
        // threaded through the same `now` as everything else (at step 0 it
        // equals the epoch, but constants don't survive clock refactors).
        if step == 0 {
            let mut started = Vec::new();
            for i in 0..NODES {
                let li = LoadInfo::new(NodeId(i as u32), loads[i], 20, now);
                let effects = conductors[i].on_start(li);
                dispatch(&mut conductors, now, &loads, i, effects, &mut started);
            }
        }

        // Conductor ticks.
        if cfg.lb_enabled {
            let mut started = Vec::new();
            for i in 0..NODES {
                let li = LoadInfo::new(
                    NodeId(i as u32),
                    loads[i],
                    space.zones_of(i).len() as u32,
                    now,
                );
                let procs: Vec<(Pid, f64)> = space
                    .zones_of(i)
                    .iter()
                    .map(|z| {
                        (
                            pid_of(*z),
                            cfg.proc_base_cpu
                                + cfg.proc_per_client_cpu * counts[z.0 as usize] as f64,
                        )
                    })
                    .collect();
                let effects = conductors[i].on_tick(now, li, &procs);
                dispatch(&mut conductors, now, &loads, i, effects, &mut started);
            }
            for (from, pid, to) in started {
                let zone = zone_of(pid);
                debug_assert_eq!(space.node_of(zone), from);
                // Duration from the analytic model (dvelm-migrate::model):
                // the precopy schedule plus a freeze scaling with the zone's
                // connection count.
                let n = counts[zone.0 as usize] as u64;
                let profile = WorkloadProfile::zone_server(n);
                let dur_us = predict_total_us(&cfg.cost, &profile, Strategy::IncrementalCollective);
                let dur_s = dur_us as f64 / 1_000_000.0;
                active.push(ActiveMig {
                    zone,
                    from,
                    to,
                    ends_at_s: t_s + dur_s,
                });
            }
        }

        // Record the series.
        let proc_counts = space.proc_counts();
        for i in 0..NODES {
            result.cpu[i].push_at_secs(t_s, loads[i]);
            result.procs[i].push_at_secs(t_s, proc_counts[i] as f64);
        }
    }

    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg(lb: bool) -> FlowSimConfig {
        FlowSimConfig {
            lb_enabled: lb,
            ..FlowSimConfig::default()
        }
    }

    #[test]
    fn no_lb_reproduces_fig5e_shape() {
        let r = run_flow_sim(&base_cfg(false));
        // Initially roughly balanced in the high-70s band.
        for s in &r.cpu {
            let v0 = s.at(5.0).unwrap();
            assert!((70.0..88.0).contains(&v0), "initial load {v0}");
        }
        // Corner nodes (node1 = index 0, node5 = index 4) end overloaded…
        let end = 890.0;
        assert!(
            r.cpu[0].at(end).unwrap() > 93.0,
            "node1 end {}",
            r.cpu[0].at(end).unwrap()
        );
        assert!(
            r.cpu[4].at(end).unwrap() > 93.0,
            "node5 end {}",
            r.cpu[4].at(end).unwrap()
        );
        // …while the middle node drains.
        assert!(
            r.cpu[2].at(end).unwrap() < 68.0,
            "node3 end {}",
            r.cpu[2].at(end).unwrap()
        );
        // No migrations without LB; process counts stay at 20.
        assert!(r.migrations.is_empty());
        for s in &r.procs {
            assert_eq!(s.at(end).unwrap(), 20.0);
        }
    }

    #[test]
    fn lb_reproduces_fig5f_and_fig5d_shape() {
        let off = run_flow_sim(&base_cfg(false));
        let on = run_flow_sim(&base_cfg(true));
        assert!(!on.migrations.is_empty(), "the balancer migrated processes");

        // Fig. 5f: the late-experiment imbalance is much smaller with LB.
        let spread_off = off.mean_spread(600.0, 900.0);
        let spread_on = on.mean_spread(600.0, 900.0);
        assert!(
            spread_on < spread_off * 0.6,
            "LB spread {spread_on:.1} vs no-LB {spread_off:.1}"
        );

        // Fig. 5d: overloaded corner nodes shed processes, middle nodes
        // gained them; total conserved.
        let end = 890.0;
        let corner = on.procs[0].at(end).unwrap() + on.procs[4].at(end).unwrap();
        let middle = on.procs[2].at(end).unwrap() + on.procs[3].at(end).unwrap();
        assert!(corner < 40.0, "corner nodes shed processes: {corner}");
        assert!(middle > 40.0, "middle nodes gained processes: {middle}");
        let total: f64 = on.procs.iter().map(|s| s.at(end).unwrap()).sum();
        assert_eq!(total, 100.0, "processes conserved");
    }

    #[test]
    fn migrations_move_zones_from_hot_to_cold() {
        let r = run_flow_sim(&base_cfg(true));
        for m in &r.migrations {
            assert_ne!(m.from, m.to);
        }
        // The majority of migrations leave the corner nodes.
        let from_corners = r
            .migrations
            .iter()
            .filter(|m| m.from == 0 || m.from == 4)
            .count();
        assert!(
            from_corners * 2 > r.migrations.len(),
            "{from_corners}/{} from corners",
            r.migrations.len()
        );
    }

    #[test]
    fn determinism() {
        let a = run_flow_sim(&base_cfg(true));
        let b = run_flow_sim(&base_cfg(true));
        assert_eq!(a.migrations, b.migrations);
        assert_eq!(a.cpu[0].points(), b.cpu[0].points());
    }
}
