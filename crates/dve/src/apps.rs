//! The packet-level DVE applications: zone server, database server, and a
//! client swarm.

use bytes::Bytes;
use dvelm_cluster::{App, AppCtx};
use dvelm_proc::Fd;
use dvelm_sim::MILLISECOND;
use dvelm_stack::Skb;
use std::cell::RefCell;
use std::rc::Rc;

/// Base TCP port of zone servers (zone *z* listens on `ZONE_BASE_PORT + z`;
/// ports, not IPs, identify DVE processes in the single-IP cluster, §II-A).
pub const ZONE_BASE_PORT: u16 = 20_000;
/// MySQL-like database port.
pub const DB_PORT: u16 = 3306;
/// State-update payload size (§VI-C: 256 B, the reported MMOG average).
pub const UPDATE_BYTES: usize = 256;
/// Client command payload size.
pub const CMD_BYTES: usize = 64;
/// Database query/answer payload sizes.
pub const DB_QUERY_BYTES: usize = 128;

/// A zone server: accepts client TCP connections, runs the real-time loop
/// (≈20 updates/s), keeps a MySQL session busy and dirties memory as it
/// simulates the world.
pub struct ZoneServer {
    /// Established client connections.
    conns: Vec<Fd>,
    /// The database session (must be connected by the scenario builder).
    db_fd: Option<Fd>,
    tick: u64,
    update_round: u64,
    /// Next client-update round is due at this instant (time-based 20 Hz on
    /// top of the 10 ms internal frame loop).
    next_update_at: u64,
    /// Pages dirtied per 10 ms internal frame (world state churn).
    /// 100 pages/frame ≈ 40 MB/s keeps the freeze-phase memory increment in
    /// the ~10 ms band the paper's Fig. 5b floor shows.
    pub dirty_pages_per_tick: usize,
    /// CPU model: share = base + per_client × connections (§VI-C: "CPU
    /// consumption grows proportionally with the number of clients").
    pub cpu_base: f64,
    pub cpu_per_client: f64,
    /// Updates sent (statistic).
    pub updates_sent: Rc<RefCell<u64>>,
    /// Commands received (statistic).
    pub cmds_received: Rc<RefCell<u64>>,
}

impl ZoneServer {
    /// A zone server with the calibrated defaults.
    pub fn new() -> ZoneServer {
        ZoneServer {
            conns: Vec::new(),
            db_fd: None,
            tick: 0,
            update_round: 0,
            next_update_at: 0,
            dirty_pages_per_tick: 100,
            cpu_base: 1.5,
            cpu_per_client: 0.0215,
            updates_sent: Rc::new(RefCell::new(0)),
            cmds_received: Rc::new(RefCell::new(0)),
        }
    }

    /// Tell the app which fd is the database session.
    pub fn set_db_fd(&mut self, fd: Fd) {
        self.db_fd = Some(fd);
    }

    /// Established client connections.
    pub fn connection_count(&self) -> usize {
        self.conns.len()
    }
}

impl Default for ZoneServer {
    fn default() -> Self {
        Self::new()
    }
}

impl App for ZoneServer {
    fn on_tick(&mut self, ctx: &mut AppCtx<'_>) {
        self.tick += 1;
        ctx.touch_memory(self.dirty_pages_per_tick);
        ctx.set_cpu_share(self.cpu_base + self.cpu_per_client * self.conns.len() as f64);
        // The real-time loop: ~20 state updates per second to every client,
        // time-based so a freeze shifts (not rephases) the cadence.
        if ctx.now.as_micros() >= self.next_update_at {
            self.next_update_at = ctx.now.as_micros() + 50 * MILLISECOND;
            let update = Bytes::from(vec![0x5Au8; UPDATE_BYTES]);
            let conns = self.conns.clone();
            for fd in conns {
                ctx.send(fd, update.clone());
                *self.updates_sent.borrow_mut() += 1;
            }
            // Persist world properties to the database a few times a second
            // (every 5th update round = 4 queries/s).
            self.update_round += 1;
            if self.update_round.is_multiple_of(5) {
                if let Some(db) = self.db_fd {
                    ctx.send(db, Bytes::from(vec![0xD8u8; DB_QUERY_BYTES]));
                }
            }
        }
    }

    fn on_new_connection(&mut self, _ctx: &mut AppCtx<'_>, _listener: Fd, child: Fd) {
        self.conns.push(child);
    }

    fn on_connected(&mut self, _ctx: &mut AppCtx<'_>, fd: Fd) {
        // The only connection a zone server actively opens is its MySQL
        // session.
        self.db_fd = Some(fd);
    }

    fn on_tcp_data(&mut self, ctx: &mut AppCtx<'_>, fd: Fd, data: &[Skb]) {
        if Some(fd) == self.db_fd {
            return; // database acknowledgements
        }
        *self.cmds_received.borrow_mut() += data.len() as u64;
        ctx.touch_memory(1);
    }

    fn on_conn_closed(&mut self, _ctx: &mut AppCtx<'_>, fd: Fd) {
        self.conns.retain(|c| *c != fd);
        if self.db_fd == Some(fd) {
            self.db_fd = None;
        }
    }

    fn tick_period_us(&self) -> u64 {
        10 * MILLISECOND // internal frame loop; updates go out at 20 Hz
    }
}

/// The MySQL-like database server: answers every query with a small OK.
pub struct DbServer {
    /// Queries served (statistic).
    pub queries: Rc<RefCell<u64>>,
}

impl DbServer {
    /// A database server.
    pub fn new() -> DbServer {
        DbServer {
            queries: Rc::new(RefCell::new(0)),
        }
    }
}

impl Default for DbServer {
    fn default() -> Self {
        Self::new()
    }
}

impl App for DbServer {
    fn on_tick(&mut self, ctx: &mut AppCtx<'_>) {
        ctx.touch_memory(4);
    }

    fn on_tcp_data(&mut self, ctx: &mut AppCtx<'_>, fd: Fd, data: &[Skb]) {
        for _ in data {
            *self.queries.borrow_mut() += 1;
            ctx.send(fd, Bytes::from_static(b"OK\0\0\0\0\0\0"));
        }
    }
}

/// A swarm of game clients multiplexed into one process on a client host:
/// each established connection sends a 64-byte command every tick.
pub struct SwarmClient {
    conns: Vec<Fd>,
    /// Updates received across all connections (statistic).
    pub updates_received: Rc<RefCell<u64>>,
    /// Bytes received across all connections (statistic).
    pub bytes_received: Rc<RefCell<u64>>,
}

impl SwarmClient {
    /// An empty swarm; connections are opened by the scenario builder and
    /// registered via `on_connected`.
    pub fn new() -> SwarmClient {
        SwarmClient {
            conns: Vec::new(),
            updates_received: Rc::new(RefCell::new(0)),
            bytes_received: Rc::new(RefCell::new(0)),
        }
    }

    /// Established connections.
    pub fn connection_count(&self) -> usize {
        self.conns.len()
    }
}

impl Default for SwarmClient {
    fn default() -> Self {
        Self::new()
    }
}

impl App for SwarmClient {
    fn on_tick(&mut self, ctx: &mut AppCtx<'_>) {
        let cmd = Bytes::from(vec![0xC0u8; CMD_BYTES]);
        let conns = self.conns.clone();
        for fd in conns {
            ctx.send(fd, cmd.clone());
        }
    }

    fn on_connected(&mut self, _ctx: &mut AppCtx<'_>, fd: Fd) {
        self.conns.push(fd);
    }

    fn on_tcp_data(&mut self, _ctx: &mut AppCtx<'_>, _fd: Fd, data: &[Skb]) {
        let mut n = self.updates_received.borrow_mut();
        let mut b = self.bytes_received.borrow_mut();
        for skb in data {
            *n += 1;
            *b += skb.payload.len() as u64;
        }
    }

    fn on_conn_closed(&mut self, _ctx: &mut AppCtx<'_>, fd: Fd) {
        self.conns.retain(|c| *c != fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zone_server_cpu_model_matches_paper_scale() {
        let z = ZoneServer::new();
        // 100 clients/zone initially → ≈3.65% per process → ≈78% per node
        // with 20 processes + 5% base, the Fig. 5e starting band.
        let share = z.cpu_base + z.cpu_per_client * 100.0;
        assert!((3.5..3.8).contains(&share), "per-process share {share}");
        let node = 5.0 + 20.0 * share;
        assert!((75.0..83.0).contains(&node), "initial node load {node}");
    }

    #[test]
    fn internal_frames_are_10ms() {
        assert_eq!(ZoneServer::new().tick_period_us(), 10_000);
    }
}
