//! The virtual space: a 10×10 zone grid with the paper's initial
//! node assignment (Fig. 5a: each of the five nodes manages two full rows,
//! 20 zones).

/// Grid side length.
pub const GRID: usize = 10;
/// Total zones.
pub const ZONES: usize = GRID * GRID;
/// Server nodes in the testbed.
pub const NODES: usize = 5;

/// A zone index in row-major order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ZoneId(pub u32);

impl ZoneId {
    /// Zone containing grid cell (row, col).
    pub fn at(row: usize, col: usize) -> ZoneId {
        assert!(row < GRID && col < GRID);
        ZoneId((row * GRID + col) as u32)
    }

    /// Grid row.
    pub fn row(self) -> usize {
        self.0 as usize / GRID
    }

    /// Grid column.
    pub fn col(self) -> usize {
        self.0 as usize % GRID
    }
}

/// The partitioned virtual space.
#[derive(Debug, Clone)]
pub struct VirtualSpace {
    /// zone → hosting node index (mutated by migrations).
    assignment: Vec<usize>,
}

impl Default for VirtualSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl VirtualSpace {
    /// The initial Fig. 5a assignment: node `i` gets rows `2i` and `2i+1`.
    pub fn new() -> VirtualSpace {
        let assignment = (0..ZONES).map(|z| (z / GRID) / 2).collect();
        VirtualSpace { assignment }
    }

    /// The zone containing a continuous position (x right, y down, both in
    /// `[0, 10)`).
    pub fn zone_of(&self, x: f64, y: f64) -> ZoneId {
        let col = (x.clamp(0.0, 9.999) as usize).min(GRID - 1);
        let row = (y.clamp(0.0, 9.999) as usize).min(GRID - 1);
        ZoneId::at(row, col)
    }

    /// Which node hosts a zone's server process.
    pub fn node_of(&self, zone: ZoneId) -> usize {
        self.assignment[zone.0 as usize]
    }

    /// Reassign a zone (the effect of migrating its server process).
    pub fn reassign(&mut self, zone: ZoneId, node: usize) {
        assert!(node < NODES);
        self.assignment[zone.0 as usize] = node;
    }

    /// Zones hosted by a node, ascending.
    pub fn zones_of(&self, node: usize) -> Vec<ZoneId> {
        (0..ZONES)
            .filter(|z| self.assignment[*z] == node)
            .map(|z| ZoneId(z as u32))
            .collect()
    }

    /// Process count per node.
    pub fn proc_counts(&self) -> [usize; NODES] {
        let mut counts = [0; NODES];
        for n in &self.assignment {
            counts[*n] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_assignment_matches_fig5a() {
        let s = VirtualSpace::new();
        assert_eq!(s.proc_counts(), [20; 5]);
        // node0 = rows 0-1, node4 = rows 8-9.
        assert_eq!(s.node_of(ZoneId::at(0, 0)), 0);
        assert_eq!(s.node_of(ZoneId::at(1, 9)), 0);
        assert_eq!(s.node_of(ZoneId::at(2, 0)), 1);
        assert_eq!(s.node_of(ZoneId::at(5, 5)), 2);
        assert_eq!(s.node_of(ZoneId::at(9, 9)), 4);
    }

    #[test]
    fn zone_of_position() {
        let s = VirtualSpace::new();
        assert_eq!(s.zone_of(0.5, 0.5), ZoneId::at(0, 0));
        assert_eq!(s.zone_of(9.99, 9.99), ZoneId::at(9, 9));
        assert_eq!(s.zone_of(3.2, 7.8), ZoneId::at(7, 3));
        // Clamped outside the space.
        assert_eq!(s.zone_of(-1.0, 12.0), ZoneId::at(9, 0));
    }

    #[test]
    fn reassign_moves_a_zone() {
        let mut s = VirtualSpace::new();
        s.reassign(ZoneId::at(0, 0), 3);
        assert_eq!(s.node_of(ZoneId::at(0, 0)), 3);
        assert_eq!(s.proc_counts(), [19, 20, 20, 21, 20]);
        assert_eq!(s.zones_of(3).len(), 21);
    }

    #[test]
    fn zone_row_col_roundtrip() {
        for r in 0..GRID {
            for c in 0..GRID {
                let z = ZoneId::at(r, c);
                assert_eq!((z.row(), z.col()), (r, c));
            }
        }
    }
}
