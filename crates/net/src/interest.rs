//! Zone/AOI interest management for the broadcast router.
//!
//! Real DVEs/MMOGs — the paper's own target domain — partition the virtual
//! world into zones and only ship a user's commands to the servers
//! *interested* in that zone. The single-IP broadcast model (§II-A) instead
//! delivers every inbound frame to every node, O(nodes) per packet, which
//! caps cluster size no matter how fast each delivery gets.
//!
//! The [`InterestTable`] restores the multicast property without giving up
//! the ONE-IP configuration: services are still addressed by **port** on the
//! shared public IP, and the table maps each service port to a [`ZoneId`]
//! and each zone to the set of subscribed server nodes. An inbound frame for
//! a mapped port fans out only to that zone's subscribers; frames for
//! unmapped ports keep the legacy full broadcast, so the capture-hook
//! loss-prevention semantics are preserved by construction — during a
//! migration the *destination* node subscribes to the process's zones at
//! capture setup, so it hears (and captures) the client's packets exactly
//! like it did under broadcast.
//!
//! The table is pure bookkeeping: it never draws randomness, never computes
//! times, and an empty/unused table leaves every legacy code path — and
//! therefore every legacy byte stream — untouched.

use crate::addr::{NodeId, Port};
use std::collections::{BTreeMap, BTreeSet};

/// A virtual-world zone as the *routing* layer sees it.
///
/// This deliberately mirrors (but does not depend on) the workload-side
/// 10×10 grid in `dvelm-dve`: the fabric only needs an opaque ordered key,
/// and the workload converts its grid coordinates via the public `u32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ZoneId(pub u32);

impl std::fmt::Display for ZoneId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "zone{}", self.0)
    }
}

/// Zone → subscribed server nodes, plus service port → zone.
///
/// Owned by the [`BroadcastRouter`](crate::router::BroadcastRouter); the
/// cluster runtime mutates it through the effect pipeline
/// (`Effect::Subscribe`/`Effect::Unsubscribe`) so subscription changes ride
/// the same ordered, observable rails as every other migration side effect.
#[derive(Debug, Default)]
pub struct InterestTable {
    /// Which server nodes want frames for each zone.
    subs: BTreeMap<ZoneId, BTreeSet<NodeId>>,
    /// Which zone each service port belongs to (the public-IP port is the
    /// service identity in the ONE-IP configuration).
    ports: BTreeMap<Port, ZoneId>,
}

impl InterestTable {
    /// An empty table (legacy broadcast for every port).
    pub fn new() -> InterestTable {
        InterestTable::default()
    }

    /// Bind a service port to a zone. Frames for this port now fan out to
    /// the zone's subscribers instead of the full cluster.
    pub fn map_port(&mut self, port: Port, zone: ZoneId) {
        self.ports.insert(port, zone);
    }

    /// Remove a port's zone binding (the service is gone); its frames fall
    /// back to the legacy full broadcast.
    pub fn unmap_port(&mut self, port: Port) {
        self.ports.remove(&port);
    }

    /// The zone a service port is bound to, if any.
    pub fn zone_of_port(&self, port: Port) -> Option<ZoneId> {
        self.ports.get(&port).copied()
    }

    /// Subscribe a node to a zone. Returns whether the subscription is new.
    pub fn subscribe(&mut self, zone: ZoneId, node: NodeId) -> bool {
        self.subs.entry(zone).or_default().insert(node)
    }

    /// Unsubscribe a node from a zone. Returns whether it was subscribed.
    /// Empty zones are dropped so the table never accumulates tombstones.
    pub fn unsubscribe(&mut self, zone: ZoneId, node: NodeId) -> bool {
        let Some(set) = self.subs.get_mut(&zone) else {
            return false;
        };
        let removed = set.remove(&node);
        if set.is_empty() {
            self.subs.remove(&zone);
        }
        removed
    }

    /// The subscriber set of a zone (`None` when nobody is subscribed).
    pub fn subscribers(&self, zone: ZoneId) -> Option<&BTreeSet<NodeId>> {
        self.subs.get(&zone)
    }

    /// Drop every subscription held by `node` (node crash or departure —
    /// a dead node must not linger in any fan-out set).
    pub fn purge_node(&mut self, node: NodeId) {
        self.subs.retain(|_, set| {
            set.remove(&node);
            !set.is_empty()
        });
    }

    /// Iterate `(zone, subscribers)` — the invariant monitor sweeps this to
    /// catch subscriptions pointing at hosts that no longer own a process.
    pub fn iter(&self) -> impl Iterator<Item = (ZoneId, &BTreeSet<NodeId>)> {
        self.subs.iter().map(|(z, s)| (*z, s))
    }

    /// Number of zones with at least one subscriber.
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// Whether no zone has a subscriber.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Total live subscriptions held by `node` across all zones (carried in
    /// the load-balancer's `LoadInfo` as a cheap interest-pressure signal).
    pub fn node_subscriptions(&self, node: NodeId) -> u32 {
        self.subs.values().filter(|set| set.contains(&node)).count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscribe_unsubscribe_roundtrip() {
        let mut t = InterestTable::new();
        assert!(t.subscribe(ZoneId(3), NodeId(1)));
        assert!(!t.subscribe(ZoneId(3), NodeId(1)), "idempotent");
        assert!(t.subscribe(ZoneId(3), NodeId(2)));
        assert_eq!(t.subscribers(ZoneId(3)).unwrap().len(), 2);
        assert!(t.unsubscribe(ZoneId(3), NodeId(1)));
        assert!(!t.unsubscribe(ZoneId(3), NodeId(1)), "already gone");
        assert_eq!(t.subscribers(ZoneId(3)).unwrap().len(), 1);
    }

    #[test]
    fn empty_zones_are_dropped() {
        let mut t = InterestTable::new();
        t.subscribe(ZoneId(7), NodeId(4));
        t.unsubscribe(ZoneId(7), NodeId(4));
        assert!(t.subscribers(ZoneId(7)).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn port_mapping() {
        let mut t = InterestTable::new();
        t.map_port(Port(27960), ZoneId(0));
        assert_eq!(t.zone_of_port(Port(27960)), Some(ZoneId(0)));
        assert_eq!(t.zone_of_port(Port(27961)), None);
        t.unmap_port(Port(27960));
        assert_eq!(t.zone_of_port(Port(27960)), None);
    }

    #[test]
    fn purge_node_clears_every_zone() {
        let mut t = InterestTable::new();
        t.subscribe(ZoneId(1), NodeId(9));
        t.subscribe(ZoneId(2), NodeId(9));
        t.subscribe(ZoneId(2), NodeId(5));
        t.purge_node(NodeId(9));
        assert!(t.subscribers(ZoneId(1)).is_none());
        assert_eq!(t.subscribers(ZoneId(2)).unwrap().len(), 1);
        assert_eq!(t.node_subscriptions(NodeId(9)), 0);
        assert_eq!(t.node_subscriptions(NodeId(5)), 1);
    }
}
