//! Simulated cluster network fabric.
//!
//! Reproduces the paper's single-IP-address cluster (§II-A, Fig. 1): every
//! DVE server node has a *public* interface carrying the one shared public IP
//! and a *local* interface with a unique in-cluster address. The router
//! **broadcasts** each inbound (WAN→cluster) packet to all public interfaces —
//! the property the packet-loss-prevention mechanism exploits — and unicasts
//! outbound packets to the client hosts. In-cluster traffic goes through a
//! switch between local interfaces.
//!
//! This crate is pure topology + timing: links compute arrival instants
//! (serialization delay with a busy-until cursor, plus propagation latency),
//! the router/switch compute *who* receives a frame and *when*. The runtime
//! in `dvelm-cluster` pairs those times with the actual packet objects and
//! schedules delivery events.

pub mod addr;
pub mod interest;
pub mod link;
pub mod router;
pub mod switch;

pub use addr::{Ip, NodeId, Port, SockAddr};
pub use interest::{InterestTable, ZoneId};
pub use link::{Link, LinkStats, LossModel};
pub use router::{BroadcastRouter, RouteError};
pub use switch::ClusterSwitch;
