//! Addressing: IPv4-style addresses, ports and host identifiers.
//!
//! The cluster configuration assigns the *same* public IP to every server
//! node (§II-A) and distinguishes DVE services by **port number**, so a
//! `SockAddr` of the public IP never identifies a node — port ownership does.
//! Local (in-cluster) interfaces have unique per-node addresses.

use std::fmt;

/// A simulated host (cluster node, client host or database server).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// An IPv4-style address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ip(pub u32);

impl Ip {
    /// The cluster's single public IP, shared by every node's public
    /// interface (ONE-IP configuration).
    pub const CLUSTER_PUBLIC: Ip = Ip::new(203, 0, 113, 1);

    /// Construct from dotted-quad components.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Ip {
        Ip(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// The unique in-cluster (local network) address of a server node.
    pub const fn local_of(node: NodeId) -> Ip {
        Ip(Ip::new(10, 0, 0, 0).0 + node.0 + 1)
    }

    /// The WAN address of a client host.
    pub const fn client_of(host: NodeId) -> Ip {
        Ip(Ip::new(198, 51, 100, 0).0 + host.0 + 1)
    }

    /// Whether this is an in-cluster (10.0.0.0/8) address.
    pub const fn is_local(self) -> bool {
        (self.0 >> 24) == 10
    }

    /// Inverse of [`Ip::local_of`]: which cluster host owns this local IP.
    pub fn local_host(self) -> Option<NodeId> {
        if self.is_local() && self.0 > Ip::new(10, 0, 0, 0).0 {
            Some(NodeId(self.0 - Ip::new(10, 0, 0, 0).0 - 1))
        } else {
            None
        }
    }

    /// Inverse of [`Ip::client_of`]: which client host owns this WAN IP.
    pub fn client_host(self) -> Option<NodeId> {
        let base = Ip::new(198, 51, 100, 0).0;
        if self.0 > base && self.0 <= base + 0xff {
            Some(NodeId(self.0 - base - 1))
        } else {
            None
        }
    }
}

impl fmt::Display for Ip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{}.{}.{}",
            (self.0 >> 24) & 0xff,
            (self.0 >> 16) & 0xff,
            (self.0 >> 8) & 0xff,
            self.0 & 0xff
        )
    }
}

/// A transport-layer port number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Port(pub u16);

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An (ip, port) endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SockAddr {
    pub ip: Ip,
    pub port: Port,
}

impl SockAddr {
    /// Construct an endpoint.
    pub const fn new(ip: Ip, port: u16) -> SockAddr {
        SockAddr {
            ip,
            port: Port(port),
        }
    }
}

impl fmt::Display for SockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dotted_quad_roundtrip() {
        let ip = Ip::new(203, 0, 113, 1);
        assert_eq!(format!("{ip}"), "203.0.113.1");
    }

    #[test]
    fn local_addresses_are_unique_and_local() {
        let a = Ip::local_of(NodeId(0));
        let b = Ip::local_of(NodeId(1));
        assert_ne!(a, b);
        assert!(a.is_local());
        assert!(b.is_local());
        assert_eq!(format!("{a}"), "10.0.0.1");
    }

    #[test]
    fn public_and_client_addresses_are_not_local() {
        assert!(!Ip::CLUSTER_PUBLIC.is_local());
        assert!(!Ip::client_of(NodeId(3)).is_local());
    }

    #[test]
    fn client_addresses_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..100 {
            assert!(seen.insert(Ip::client_of(NodeId(i))));
        }
    }

    #[test]
    fn sockaddr_display() {
        let sa = SockAddr::new(Ip::CLUSTER_PUBLIC, 27960);
        assert_eq!(format!("{sa}"), "203.0.113.1:27960");
    }
}
