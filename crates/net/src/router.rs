//! The single-IP broadcast router (§II-A, Fig. 1).
//!
//! Inbound (WAN→cluster) frames are **broadcast to every server node's public
//! interface**; each node's stack decides locally whether it owns the
//! destination port. Outbound frames are unicast to the client host. This is
//! the ONE-IP configuration whose broadcast property makes in-cluster socket
//! migration possible without touching the router, and which the
//! packet-loss-prevention mechanism exploits: while a socket is in transit,
//! the *destination* node already receives (and captures) the client's
//! packets.

use crate::addr::{NodeId, Port};
use crate::interest::InterestTable;
use crate::link::Link;
use dvelm_sim::{DetRng, SimTime};
use std::collections::BTreeMap;

/// Why the router could not route a frame. Unknown endpoints are a normal
/// consequence of hosts crashing or leaving while frames are in flight, so
/// they are reported to the caller instead of panicking the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// The sending client host has no uplink (never attached, or detached).
    UnknownClientSource(NodeId),
    /// The receiving client host has no downlink (never attached, or
    /// detached after its host crashed or departed).
    UnknownClientDest(NodeId),
    /// The sending server node has no uplink (never attached, or detached).
    UnknownNode(NodeId),
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::UnknownClientSource(n) => write!(f, "unknown client source host {n}"),
            RouteError::UnknownClientDest(n) => write!(f, "unknown client dest host {n}"),
            RouteError::UnknownNode(n) => write!(f, "unknown server node {n}"),
        }
    }
}

impl std::error::Error for RouteError {}

/// The WAN-facing broadcast router of the cluster.
#[derive(Debug)]
pub struct BroadcastRouter {
    /// router → node public interface (one per server node).
    downlinks: BTreeMap<NodeId, Link>,
    /// node public interface → router.
    uplinks: BTreeMap<NodeId, Link>,
    /// router → client host.
    client_downlinks: BTreeMap<NodeId, Link>,
    /// client host → router.
    client_uplinks: BTreeMap<NodeId, Link>,
    link_template: Link,
    client_template: Link,
    /// Zone subscriptions for the interest-managed (AOI) inbound path.
    /// Empty by default: the legacy [`inbound_into`](Self::inbound_into)
    /// broadcast never consults it.
    interest: InterestTable,
}

impl BroadcastRouter {
    /// A router whose cluster-side links are copies of `cluster_link` and
    /// whose client access links are copies of `client_link`.
    pub fn new(cluster_link: Link, client_link: Link) -> BroadcastRouter {
        BroadcastRouter {
            downlinks: BTreeMap::new(),
            uplinks: BTreeMap::new(),
            client_downlinks: BTreeMap::new(),
            client_uplinks: BTreeMap::new(),
            link_template: cluster_link,
            client_template: client_link,
            interest: InterestTable::new(),
        }
    }

    /// A router with Gigabit cluster links and WAN-ish client links.
    pub fn default_testbed() -> BroadcastRouter {
        BroadcastRouter::new(Link::gige(), Link::client_wan())
    }

    /// Attach a server node's public interface.
    pub fn attach_node(&mut self, node: NodeId) {
        self.downlinks.insert(node, self.link_template.clone());
        self.uplinks.insert(node, self.link_template.clone());
    }

    /// Detach a server node (node leave). Its zone subscriptions are purged
    /// with its links — a gone node must not linger in any fan-out set.
    pub fn detach_node(&mut self, node: NodeId) {
        self.downlinks.remove(&node);
        self.uplinks.remove(&node);
        self.interest.purge_node(node);
    }

    /// The router's zone-interest table (read side: monitor sweeps, load
    /// reporting).
    pub fn interest(&self) -> &InterestTable {
        &self.interest
    }

    /// Mutable access to the zone-interest table. The cluster runtime is
    /// the only writer, and it writes through the effect pipeline so every
    /// subscription change is ordered and observable.
    pub fn interest_mut(&mut self) -> &mut InterestTable {
        &mut self.interest
    }

    /// Attach a client host on the WAN side.
    pub fn attach_client(&mut self, host: NodeId) {
        self.client_downlinks
            .insert(host, self.client_template.clone());
        self.client_uplinks
            .insert(host, self.client_template.clone());
    }

    /// Detach a client host (client departure or crash): both access links
    /// are released, so frames toward it report
    /// [`RouteError::UnknownClientDest`] instead of serializing onto a link
    /// nobody listens to.
    pub fn detach_client(&mut self, host: NodeId) {
        self.client_downlinks.remove(&host);
        self.client_uplinks.remove(&host);
    }

    /// Server nodes currently attached.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.downlinks.keys().copied()
    }

    /// The smallest propagation latency of any link the router can put a
    /// frame on (templates included, so attaching later hosts cannot lower
    /// it). This is the conservative lookahead of the parallel core: every
    /// packet handed to the router arrives at least this much after `now`,
    /// so events already queued for the current instant form a closed set.
    pub fn min_latency_us(&self) -> u64 {
        let links = [&self.link_template, &self.client_template];
        let live = self
            .downlinks
            .values()
            .chain(self.uplinks.values())
            .chain(self.client_downlinks.values())
            .chain(self.client_uplinks.values());
        links
            .into_iter()
            .chain(live)
            .map(|l| l.latency_us)
            .min()
            .unwrap_or(0)
    }

    /// A client host sends an inbound frame: it traverses the client's
    /// uplink once, then is broadcast over every node downlink. Returns the
    /// per-node arrival instants (empty if the uplink dropped it).
    pub fn inbound(
        &mut self,
        now: SimTime,
        from_client: NodeId,
        bytes: u64,
        rng: &mut DetRng,
    ) -> Result<Vec<(NodeId, SimTime)>, RouteError> {
        let mut out = Vec::new();
        self.inbound_into(now, from_client, bytes, rng, &mut out)?;
        Ok(out)
    }

    /// [`inbound`](Self::inbound) writing the arrivals into a caller-owned
    /// buffer (cleared first) — the hot-path variant: the broadcast fan-out
    /// runs once per frame per node, and reusing the buffer keeps the
    /// per-packet cost allocation-free.
    pub fn inbound_into(
        &mut self,
        now: SimTime,
        from_client: NodeId,
        bytes: u64,
        rng: &mut DetRng,
        out: &mut Vec<(NodeId, SimTime)>,
    ) -> Result<(), RouteError> {
        out.clear();
        let up = self
            .client_uplinks
            .get_mut(&from_client)
            .ok_or(RouteError::UnknownClientSource(from_client))?;
        let Some(at_router) = up.transmit(now, bytes, rng) else {
            return Ok(());
        };
        out.extend(self.downlinks.iter_mut().filter_map(|(node, link)| {
            link.transmit(at_router, bytes, rng).map(|arr| (*node, arr))
        }));
        Ok(())
    }

    /// The interest-managed variant of [`inbound_into`](Self::inbound_into):
    /// a frame whose destination port is bound to a zone fans out only to
    /// that zone's subscribers — O(subscribers) instead of O(nodes) — while
    /// frames for unmapped ports keep the legacy full broadcast. Subscriber
    /// order is node order (the subscriber set is ordered), matching the
    /// deterministic fan-out order of the broadcast path.
    pub fn inbound_zoned_into(
        &mut self,
        now: SimTime,
        from_client: NodeId,
        bytes: u64,
        dst_port: Port,
        rng: &mut DetRng,
        out: &mut Vec<(NodeId, SimTime)>,
    ) -> Result<(), RouteError> {
        out.clear();
        let up = self
            .client_uplinks
            .get_mut(&from_client)
            .ok_or(RouteError::UnknownClientSource(from_client))?;
        let Some(at_router) = up.transmit(now, bytes, rng) else {
            return Ok(());
        };
        let Some(zone) = self.interest.zone_of_port(dst_port) else {
            // Unmapped port: legacy broadcast, same fan-out as inbound_into.
            out.extend(self.downlinks.iter_mut().filter_map(|(node, link)| {
                link.transmit(at_router, bytes, rng).map(|arr| (*node, arr))
            }));
            return Ok(());
        };
        if let Some(subs) = self.interest.subscribers(zone) {
            for &node in subs {
                // A subscriber with no downlink is a node that crashed
                // before its subscriptions were purged — skip, don't panic.
                if let Some(link) = self.downlinks.get_mut(&node) {
                    if let Some(arr) = link.transmit(at_router, bytes, rng) {
                        out.push((node, arr));
                    }
                }
            }
        }
        // A mapped zone with zero subscribers delivers to nobody: the
        // owning process is gone, exactly like a frame to a dark address.
        Ok(())
    }

    /// A server node sends an outbound frame to a client host (unicast).
    /// `Ok(None)` means a loss model dropped the frame. When the client is
    /// unknown (crashed or departed), the frame has still occupied the
    /// sending node's uplink — it died at the router, not at the NIC.
    pub fn outbound(
        &mut self,
        now: SimTime,
        from_node: NodeId,
        to_client: NodeId,
        bytes: u64,
        rng: &mut DetRng,
    ) -> Result<Option<SimTime>, RouteError> {
        let up = self
            .uplinks
            .get_mut(&from_node)
            .ok_or(RouteError::UnknownNode(from_node))?;
        let Some(at_router) = up.transmit(now, bytes, rng) else {
            return Ok(None);
        };
        let down = self
            .client_downlinks
            .get_mut(&to_client)
            .ok_or(RouteError::UnknownClientDest(to_client))?;
        Ok(down.transmit(at_router, bytes, rng))
    }

    /// Mutable access to a node downlink (for ablation loss injection).
    pub fn node_downlink_mut(&mut self, node: NodeId) -> Option<&mut Link> {
        self.downlinks.get_mut(&node)
    }

    /// Install a loss model on every client access link, both directions
    /// (failure injection: a lossy WAN).
    pub fn set_client_loss(&mut self, loss: crate::link::LossModel) {
        for link in self
            .client_uplinks
            .values_mut()
            .chain(self.client_downlinks.values_mut())
        {
            link.set_loss(loss);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LossModel;

    fn rng() -> DetRng {
        DetRng::new(7)
    }

    fn router_with(n: u32) -> BroadcastRouter {
        let mut r = BroadcastRouter::default_testbed();
        for i in 0..n {
            r.attach_node(NodeId(i));
        }
        r.attach_client(NodeId(100));
        r
    }

    #[test]
    fn inbound_reaches_every_node() {
        let mut r = router_with(5);
        let arrivals = r
            .inbound(SimTime::ZERO, NodeId(100), 256, &mut rng())
            .unwrap();
        assert_eq!(arrivals.len(), 5);
        let nodes: Vec<u32> = arrivals.iter().map(|(n, _)| n.0).collect();
        assert_eq!(nodes, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn broadcast_arrivals_are_simultaneous_on_idle_links() {
        let mut r = router_with(3);
        let arrivals = r
            .inbound(SimTime::ZERO, NodeId(100), 256, &mut rng())
            .unwrap();
        assert!(arrivals.windows(2).all(|w| w[0].1 == w[1].1));
    }

    #[test]
    fn inbound_into_reuses_the_buffer() {
        let mut r = router_with(4);
        let mut buf = vec![(NodeId(77), SimTime::from_secs(9))]; // stale junk
        r.inbound_into(SimTime::ZERO, NodeId(100), 256, &mut rng(), &mut buf)
            .unwrap();
        assert_eq!(buf.len(), 4, "buffer cleared before filling");
        let direct = r
            .inbound(SimTime::from_secs(1), NodeId(100), 256, &mut rng())
            .unwrap();
        assert_eq!(direct.len(), 4);
    }

    #[test]
    fn detached_node_stops_receiving() {
        let mut r = router_with(3);
        r.detach_node(NodeId(1));
        let arrivals = r
            .inbound(SimTime::ZERO, NodeId(100), 256, &mut rng())
            .unwrap();
        assert_eq!(arrivals.len(), 2);
        assert!(arrivals.iter().all(|(n, _)| n.0 != 1));
    }

    #[test]
    fn outbound_is_unicast_and_slower_than_lan() {
        let mut r = router_with(2);
        let arr = r
            .outbound(SimTime::ZERO, NodeId(0), NodeId(100), 256, &mut rng())
            .unwrap()
            .unwrap();
        // Must cross the 20 ms client downlink.
        assert!(arr >= SimTime::from_millis(20), "arrival {arr}");
    }

    #[test]
    fn per_node_loss_only_affects_that_node() {
        let mut r = router_with(3);
        r.node_downlink_mut(NodeId(1))
            .unwrap()
            .set_loss(LossModel::Bernoulli(1.0));
        let arrivals = r
            .inbound(SimTime::ZERO, NodeId(100), 256, &mut rng())
            .unwrap();
        let nodes: Vec<u32> = arrivals.iter().map(|(n, _)| n.0).collect();
        assert_eq!(nodes, vec![0, 2]);
    }

    #[test]
    fn uplink_drop_means_nobody_receives() {
        let mut r = router_with(3);
        r.client_uplinks
            .get_mut(&NodeId(100))
            .unwrap()
            .set_loss(LossModel::Bernoulli(1.0));
        assert!(r
            .inbound(SimTime::ZERO, NodeId(100), 256, &mut rng())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn unknown_client_is_a_typed_error_not_a_panic() {
        let mut r = router_with(1);
        assert_eq!(
            r.inbound(SimTime::ZERO, NodeId(999), 1, &mut rng()),
            Err(RouteError::UnknownClientSource(NodeId(999)))
        );
        assert_eq!(
            r.outbound(SimTime::ZERO, NodeId(5), NodeId(100), 1, &mut rng()),
            Err(RouteError::UnknownNode(NodeId(5)))
        );
        assert_eq!(
            r.outbound(SimTime::ZERO, NodeId(0), NodeId(101), 1, &mut rng()),
            Err(RouteError::UnknownClientDest(NodeId(101)))
        );
    }

    #[test]
    fn zoned_inbound_reaches_only_subscribers() {
        use crate::interest::ZoneId;
        let mut r = router_with(5);
        r.interest_mut().map_port(Port(27960), ZoneId(0));
        r.interest_mut().subscribe(ZoneId(0), NodeId(2));
        let mut out = Vec::new();
        r.inbound_zoned_into(
            SimTime::ZERO,
            NodeId(100),
            256,
            Port(27960),
            &mut rng(),
            &mut out,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, NodeId(2));
    }

    #[test]
    fn zoned_inbound_unmapped_port_falls_back_to_broadcast() {
        let mut r = router_with(4);
        let mut out = Vec::new();
        r.inbound_zoned_into(
            SimTime::ZERO,
            NodeId(100),
            256,
            Port(9999),
            &mut rng(),
            &mut out,
        )
        .unwrap();
        assert_eq!(out.len(), 4, "unmapped port keeps the legacy broadcast");
    }

    #[test]
    fn zoned_inbound_during_handoff_reaches_both_subscribers() {
        use crate::interest::ZoneId;
        // Mid-migration both the source and the destination subscribe: the
        // destination must hear (and capture) the client's frames exactly
        // like it did under full broadcast.
        let mut r = router_with(4);
        r.interest_mut().map_port(Port(27960), ZoneId(7));
        r.interest_mut().subscribe(ZoneId(7), NodeId(1));
        r.interest_mut().subscribe(ZoneId(7), NodeId(3));
        let mut out = Vec::new();
        r.inbound_zoned_into(
            SimTime::ZERO,
            NodeId(100),
            256,
            Port(27960),
            &mut rng(),
            &mut out,
        )
        .unwrap();
        let nodes: Vec<u32> = out.iter().map(|(n, _)| n.0).collect();
        assert_eq!(nodes, vec![1, 3]);
    }

    #[test]
    fn zoned_inbound_empty_zone_delivers_to_nobody() {
        use crate::interest::ZoneId;
        let mut r = router_with(3);
        r.interest_mut().map_port(Port(27960), ZoneId(0));
        let mut out = vec![(NodeId(77), SimTime::from_secs(9))]; // stale junk
        r.inbound_zoned_into(
            SimTime::ZERO,
            NodeId(100),
            256,
            Port(27960),
            &mut rng(),
            &mut out,
        )
        .unwrap();
        assert!(out.is_empty(), "mapped zone with no subscribers goes dark");
    }

    #[test]
    fn detach_node_purges_its_subscriptions() {
        use crate::interest::ZoneId;
        let mut r = router_with(3);
        r.interest_mut().map_port(Port(27960), ZoneId(0));
        r.interest_mut().subscribe(ZoneId(0), NodeId(1));
        r.detach_node(NodeId(1));
        assert!(r.interest().subscribers(ZoneId(0)).is_none());
        let mut out = Vec::new();
        r.inbound_zoned_into(
            SimTime::ZERO,
            NodeId(100),
            256,
            Port(27960),
            &mut rng(),
            &mut out,
        )
        .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn detach_client_releases_both_access_links() {
        let mut r = router_with(2);
        r.detach_client(NodeId(100));
        assert_eq!(
            r.inbound(SimTime::ZERO, NodeId(100), 1, &mut rng()),
            Err(RouteError::UnknownClientSource(NodeId(100)))
        );
        assert_eq!(
            r.outbound(SimTime::ZERO, NodeId(0), NodeId(100), 1, &mut rng()),
            Err(RouteError::UnknownClientDest(NodeId(100)))
        );
        // Re-attach works (a returning client gets fresh links).
        r.attach_client(NodeId(100));
        assert_eq!(
            r.inbound(SimTime::ZERO, NodeId(100), 256, &mut rng())
                .unwrap()
                .len(),
            2
        );
    }
}
