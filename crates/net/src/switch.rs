//! The in-cluster switch connecting the nodes' *local* interfaces.
//!
//! Carries migration traffic (precopy pages, aggregated socket buffers,
//! capture/translation control messages), conductor heartbeats and
//! database sessions. Star topology: each host has an uplink to and a
//! downlink from the switch, all Gigabit by default.

use crate::addr::NodeId;
use crate::link::Link;
use dvelm_sim::{DetRng, SimTime};
use std::collections::BTreeMap;

/// The local-network switch.
#[derive(Debug)]
pub struct ClusterSwitch {
    uplinks: BTreeMap<NodeId, Link>,
    downlinks: BTreeMap<NodeId, Link>,
    template: Link,
}

impl ClusterSwitch {
    /// A switch whose port links are copies of `link`.
    pub fn new(link: Link) -> ClusterSwitch {
        ClusterSwitch {
            uplinks: BTreeMap::new(),
            downlinks: BTreeMap::new(),
            template: link,
        }
    }

    /// A Gigabit switch as on the paper's testbed.
    pub fn gige() -> ClusterSwitch {
        ClusterSwitch::new(Link::gige())
    }

    /// Attach a host's local interface.
    pub fn attach(&mut self, node: NodeId) {
        self.uplinks.insert(node, self.template.clone());
        self.downlinks.insert(node, self.template.clone());
    }

    /// Detach a host.
    pub fn detach(&mut self, node: NodeId) {
        self.uplinks.remove(&node);
        self.downlinks.remove(&node);
    }

    /// Whether a host is attached.
    pub fn is_attached(&self, node: NodeId) -> bool {
        self.uplinks.contains_key(&node)
    }

    /// Attached hosts.
    pub fn hosts(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.uplinks.keys().copied()
    }

    /// The smallest propagation latency of any switch port (template
    /// included). Part of the parallel core's conservative lookahead: no
    /// frame crosses the switch in less than this.
    pub fn min_latency_us(&self) -> u64 {
        [&self.template]
            .into_iter()
            .chain(self.uplinks.values())
            .chain(self.downlinks.values())
            .map(|l| l.latency_us)
            .min()
            .unwrap_or(0)
    }

    /// Unicast a frame from `src` to `dst`; returns the arrival instant.
    pub fn unicast(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        rng: &mut DetRng,
    ) -> Option<SimTime> {
        let up = self
            .uplinks
            .get_mut(&src)
            .unwrap_or_else(|| panic!("{src} not attached to switch"));
        let at_switch = up.transmit(now, bytes, rng)?;
        let down = self
            .downlinks
            .get_mut(&dst)
            .unwrap_or_else(|| panic!("{dst} not attached to switch"));
        down.transmit(at_switch, bytes, rng)
    }

    /// Broadcast a frame from `src` to every other attached host (used by
    /// conductor discovery and the periodic load heartbeat).
    pub fn broadcast(
        &mut self,
        now: SimTime,
        src: NodeId,
        bytes: u64,
        rng: &mut DetRng,
    ) -> Vec<(NodeId, SimTime)> {
        let up = self
            .uplinks
            .get_mut(&src)
            .unwrap_or_else(|| panic!("{src} not attached to switch"));
        let Some(at_switch) = up.transmit(now, bytes, rng) else {
            return Vec::new();
        };
        self.downlinks
            .iter_mut()
            .filter(|(node, _)| **node != src)
            .filter_map(|(node, link)| link.transmit(at_switch, bytes, rng).map(|t| (*node, t)))
            .collect()
    }

    /// Mutable access to a host's downlink (for loss injection in tests).
    pub fn downlink_mut(&mut self, node: NodeId) -> Option<&mut Link> {
        self.downlinks.get_mut(&node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::new(11)
    }

    fn switch_with(n: u32) -> ClusterSwitch {
        let mut s = ClusterSwitch::gige();
        for i in 0..n {
            s.attach(NodeId(i));
        }
        s
    }

    #[test]
    fn unicast_arrives_after_two_hops() {
        let mut s = switch_with(2);
        let arr = s
            .unicast(SimTime::ZERO, NodeId(0), NodeId(1), 1_000, &mut rng())
            .unwrap();
        // two serializations (8 µs each) + two latencies (50 µs each)
        assert_eq!(arr, SimTime::from_micros(2 * 8 + 2 * 50));
    }

    #[test]
    fn broadcast_excludes_sender() {
        let mut s = switch_with(4);
        let arr = s.broadcast(SimTime::ZERO, NodeId(2), 100, &mut rng());
        let nodes: Vec<u32> = arr.iter().map(|(n, _)| n.0).collect();
        assert_eq!(nodes, vec![0, 1, 3]);
    }

    #[test]
    fn self_unicast_loops_back() {
        // Loopback through the switch is allowed (used by single-node tests).
        let mut s = switch_with(1);
        assert!(s
            .unicast(SimTime::ZERO, NodeId(0), NodeId(0), 10, &mut rng())
            .is_some());
    }

    #[test]
    fn detach_removes_host() {
        let mut s = switch_with(3);
        assert!(s.is_attached(NodeId(1)));
        s.detach(NodeId(1));
        assert!(!s.is_attached(NodeId(1)));
        let arr = s.broadcast(SimTime::ZERO, NodeId(0), 10, &mut rng());
        assert_eq!(arr.len(), 1);
    }

    #[test]
    fn bulk_transfer_occupies_uplink() {
        let mut s = switch_with(3);
        let mut r = rng();
        // 3.5 MB aggregated socket buffer: 28 ms serialization on GigE.
        let big = s
            .unicast(SimTime::ZERO, NodeId(0), NodeId(1), 3_500_000, &mut r)
            .unwrap();
        assert!(big >= SimTime::from_millis(28), "arrival {big}");
        // A frame right behind it on the same uplink queues.
        let next = s
            .unicast(SimTime::ZERO, NodeId(0), NodeId(2), 100, &mut r)
            .unwrap();
        assert!(next > SimTime::from_millis(28), "arrival {next}");
    }

    #[test]
    #[should_panic(expected = "not attached")]
    fn unknown_source_panics() {
        let mut s = switch_with(1);
        s.unicast(SimTime::ZERO, NodeId(9), NodeId(0), 1, &mut rng());
    }
}
