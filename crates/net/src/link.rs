//! Point-to-point links with bandwidth, propagation latency and
//! transmission-serialization queueing.
//!
//! A link keeps a `busy_until` cursor: a frame submitted while a previous
//! frame is still serializing waits its turn, so a 3.5 MB aggregated socket
//! buffer on Gigabit Ethernet really occupies the wire for ~28 ms — the
//! effect behind the collective-vs-iterative comparison in Fig. 5b.

use dvelm_sim::{DetRng, SimTime};

/// Gigabit Ethernet payload bandwidth, bytes per second.
pub const GIGE_BANDWIDTH: u64 = 125_000_000;
/// One-way propagation + forwarding latency on the paper's LAN, microseconds.
pub const LAN_LATENCY_US: u64 = 50;

/// Optional packet-loss injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// Deliver everything.
    None,
    /// Drop each frame independently with this probability.
    Bernoulli(f64),
    /// Drop every frame submitted in `[from, to)` — a blackout window, used
    /// to model the unprotected socket-migration gap in ablation tests.
    Window { from: SimTime, to: SimTime },
    /// Correlated loss: each frame starts a drop burst with probability `p`;
    /// once a burst starts, that frame and the next `burst - 1` frames are
    /// all dropped. Models the bursty congestion/partition events fault
    /// injection cares about (`Bernoulli(p)` ≡ `Burst { p, burst: 1 }`).
    Burst { p: f64, burst: u32 },
}

/// Per-link transfer counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames accepted for transmission.
    pub frames: u64,
    /// Payload bytes accepted for transmission.
    pub bytes: u64,
    /// Frames dropped by the loss model.
    pub dropped: u64,
}

/// A unidirectional link.
#[derive(Debug, Clone)]
pub struct Link {
    /// Bytes per second.
    pub bandwidth: u64,
    /// One-way latency in microseconds.
    pub latency_us: u64,
    loss: LossModel,
    /// Frames left in the current [`LossModel::Burst`] drop burst.
    burst_left: u32,
    busy_until: SimTime,
    stats: LinkStats,
}

impl Link {
    /// A link with the given bandwidth (bytes/s) and latency (µs).
    pub fn new(bandwidth: u64, latency_us: u64) -> Link {
        assert!(bandwidth > 0, "link bandwidth must be positive");
        Link {
            bandwidth,
            latency_us,
            loss: LossModel::None,
            burst_left: 0,
            busy_until: SimTime::ZERO,
            stats: LinkStats::default(),
        }
    }

    /// A Gigabit-Ethernet LAN link as on the paper's testbed.
    pub fn gige() -> Link {
        Link::new(GIGE_BANDWIDTH, LAN_LATENCY_US)
    }

    /// A WAN-ish client access link (20 ms one-way, 10 MB/s).
    pub fn client_wan() -> Link {
        Link::new(10_000_000, 20_000)
    }

    /// Install a loss model.
    pub fn with_loss(mut self, loss: LossModel) -> Link {
        self.loss = loss;
        self
    }

    /// Replace the loss model on an existing link. Any in-progress drop
    /// burst is forgotten.
    pub fn set_loss(&mut self, loss: LossModel) {
        self.loss = loss;
        self.burst_left = 0;
    }

    /// Microseconds needed to serialize `bytes` onto the wire (≥ 1).
    ///
    /// Computed through `u128`: `bytes * 1_000_000` overflows `u64` already
    /// at ~18.4 TB, and a saturating multiply would silently *under-report*
    /// wire time for large aggregated transfers (the result would cap at
    /// `u64::MAX / bandwidth` instead of growing linearly).
    pub fn serialization_us(&self, bytes: u64) -> u64 {
        let us = (bytes as u128 * 1_000_000) / self.bandwidth as u128;
        u64::try_from(us).unwrap_or(u64::MAX).max(1)
    }

    /// Submit a frame at `now`; returns the arrival instant at the far end,
    /// or `None` if the loss model drops it. Loss is decided *before* wire
    /// occupancy so a dropped frame does not consume bandwidth (models loss
    /// at the submitting host's queue, which is where our blackout windows
    /// live).
    pub fn transmit(&mut self, now: SimTime, bytes: u64, rng: &mut DetRng) -> Option<SimTime> {
        let dropped = match self.loss {
            LossModel::None => false,
            LossModel::Bernoulli(p) => rng.chance(p),
            LossModel::Window { from, to } => now >= from && now < to,
            LossModel::Burst { p, burst } => {
                if self.burst_left > 0 {
                    self.burst_left -= 1;
                    true
                } else if rng.chance(p) {
                    self.burst_left = burst.saturating_sub(1);
                    true
                } else {
                    false
                }
            }
        };
        if dropped {
            self.stats.dropped += 1;
            return None;
        }
        let start = self.busy_until.max(now);
        let done = start + self.serialization_us(bytes);
        self.busy_until = done;
        self.stats.frames += 1;
        self.stats.bytes += bytes;
        Some(done + self.latency_us)
    }

    /// When the wire becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Transfer counters.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::new(0xfeed)
    }

    #[test]
    fn serialization_time_scales_with_bytes() {
        let l = Link::gige();
        // 125 MB/s → 1 MB takes 8000 µs.
        assert_eq!(l.serialization_us(1_000_000), 8_000);
        // Tiny frames still occupy at least 1 µs.
        assert_eq!(l.serialization_us(1), 1);
    }

    #[test]
    fn serialization_survives_the_u64_overflow_boundary() {
        // `bytes * 1_000_000` overflows u64 beyond this point; the old
        // saturating-multiply computation capped there and under-reported
        // wire time for anything larger.
        let l = Link::gige(); // 125_000_000 B/s
        let boundary = u64::MAX / 1_000_000; // ≈ 18.4 TB
        let just_below = l.serialization_us(boundary);
        let above = l.serialization_us(boundary * 4);
        // Above the boundary the result must keep scaling linearly instead
        // of collapsing onto the saturated value.
        assert!(
            above >= just_below * 4 - 4,
            "wire time stopped scaling: {just_below} vs {above}"
        );
        // Exact value through u128: bytes * 1e6 / bandwidth.
        let expect = ((boundary as u128 * 4 * 1_000_000) / 125_000_000) as u64;
        assert_eq!(above, expect);
    }

    #[test]
    fn arrival_is_serialization_plus_latency() {
        let mut l = Link::new(1_000_000, 100); // 1 MB/s
        let arr = l.transmit(SimTime::ZERO, 1_000, &mut rng()).unwrap();
        // 1000 B at 1 MB/s = 1000 µs, + 100 µs latency.
        assert_eq!(arr, SimTime::from_micros(1_100));
    }

    #[test]
    fn back_to_back_frames_queue_on_the_wire() {
        let mut l = Link::new(1_000_000, 0);
        let mut r = rng();
        let a1 = l.transmit(SimTime::ZERO, 1_000, &mut r).unwrap();
        let a2 = l.transmit(SimTime::ZERO, 1_000, &mut r).unwrap();
        assert_eq!(a1, SimTime::from_micros(1_000));
        assert_eq!(
            a2,
            SimTime::from_micros(2_000),
            "second frame waits for the first"
        );
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut l = Link::new(1_000_000, 0);
        let mut r = rng();
        l.transmit(SimTime::ZERO, 1_000, &mut r);
        let a = l
            .transmit(SimTime::from_micros(5_000), 1_000, &mut r)
            .unwrap();
        assert_eq!(a, SimTime::from_micros(6_000));
    }

    #[test]
    fn bernoulli_loss_drops_roughly_p() {
        let mut l = Link::new(GIGE_BANDWIDTH, 0).with_loss(LossModel::Bernoulli(0.3));
        let mut r = rng();
        let mut dropped = 0;
        for i in 0..10_000 {
            if l.transmit(SimTime::from_micros(i * 100), 100, &mut r)
                .is_none()
            {
                dropped += 1;
            }
        }
        assert!((2_700..3_300).contains(&dropped), "dropped {dropped}");
        assert_eq!(l.stats().dropped, dropped);
    }

    #[test]
    fn window_loss_is_exact() {
        let w = LossModel::Window {
            from: SimTime::from_millis(10),
            to: SimTime::from_millis(20),
        };
        let mut l = Link::gige().with_loss(w);
        let mut r = rng();
        assert!(l.transmit(SimTime::from_millis(9), 10, &mut r).is_some());
        assert!(l.transmit(SimTime::from_millis(10), 10, &mut r).is_none());
        assert!(l.transmit(SimTime::from_millis(19), 10, &mut r).is_none());
        assert!(l.transmit(SimTime::from_millis(20), 10, &mut r).is_some());
    }

    #[test]
    fn fault_burst_loss_drops_whole_runs() {
        // With p small but burst large, drops come in contiguous runs of
        // exactly `burst` frames (no run can start inside a run).
        let mut l = Link::new(GIGE_BANDWIDTH, 0).with_loss(LossModel::Burst { p: 0.02, burst: 8 });
        let mut r = rng();
        let outcomes: Vec<bool> = (0..5_000)
            .map(|i| {
                l.transmit(SimTime::from_micros(i * 100), 100, &mut r)
                    .is_none()
            })
            .collect();
        let mut runs = Vec::new();
        let mut len = 0u32;
        for dropped in &outcomes {
            if *dropped {
                len += 1;
            } else if len > 0 {
                runs.push(len);
                len = 0;
            }
        }
        if len > 0 {
            runs.push(len);
        }
        assert!(!runs.is_empty(), "some bursts occurred");
        assert!(
            runs.iter().all(|r| *r >= 8),
            "every drop run spans at least one full burst: {runs:?}"
        );
        assert_eq!(
            l.stats().dropped,
            outcomes.iter().filter(|d| **d).count() as u64
        );
    }

    #[test]
    fn fault_set_loss_forgets_burst_in_progress() {
        let mut l = Link::new(GIGE_BANDWIDTH, 0).with_loss(LossModel::Burst { p: 1.0, burst: 100 });
        let mut r = rng();
        assert!(l.transmit(SimTime::ZERO, 10, &mut r).is_none());
        l.set_loss(LossModel::None);
        assert!(
            l.transmit(SimTime::from_micros(1), 10, &mut r).is_some(),
            "clearing the model ends the burst immediately"
        );
    }

    #[test]
    fn stats_count_frames_and_bytes() {
        let mut l = Link::gige();
        let mut r = rng();
        l.transmit(SimTime::ZERO, 100, &mut r);
        l.transmit(SimTime::ZERO, 200, &mut r);
        assert_eq!(
            l.stats(),
            LinkStats {
                frames: 2,
                bytes: 300,
                dropped: 0
            }
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_rejected() {
        let _ = Link::new(0, 0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Arrivals on a link are nondecreasing when submissions are
        /// nondecreasing (the wire never reorders).
        #[test]
        fn fifo_wire(sizes in proptest::collection::vec(1u64..100_000, 1..50)) {
            let mut l = Link::gige();
            let mut r = DetRng::new(1);
            let mut last = SimTime::ZERO;
            let mut t = SimTime::ZERO;
            for (i, s) in sizes.iter().enumerate() {
                t += (i as u64 * 3) % 500;
                let a = l.transmit(t, *s, &mut r).unwrap();
                prop_assert!(a >= last);
                prop_assert!(a > t);
                last = a;
            }
        }

        /// Total wire occupancy equals the sum of serialization times when
        /// everything is submitted at t=0.
        #[test]
        fn occupancy_adds_up(sizes in proptest::collection::vec(1u64..1_000_000, 1..20)) {
            let mut l = Link::new(1_000_000, 0);
            let mut r = DetRng::new(2);
            let mut expect = 0;
            for s in &sizes {
                l.transmit(SimTime::ZERO, *s, &mut r);
                expect += l.serialization_us(*s);
            }
            prop_assert_eq!(l.busy_until(), SimTime::from_micros(expect));
        }
    }
}
